package tsdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// fixedClock returns a deterministic Options.Now.
func fixedClock(t time.Time) func() time.Time {
	return func() time.Time { return t }
}

var t0 = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

func openTest(t *testing.T, dir string, mut func(*Options)) *Store {
	t.Helper()
	opts := Options{
		Dir:          dir,
		CompactEvery: -1, // tests drive Compact explicitly
		SyncEvery:    -1,
		Now:          fixedClock(t0),
	}
	if mut != nil {
		mut(&opts)
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func collect(t *testing.T, s *Store, series string, since, until int64, key uint64) []Frame {
	t.Helper()
	var out []Frame
	err := s.Query(series, since, until, key, func(fr Frame) error {
		data := make([]byte, len(fr.Data))
		copy(data, fr.Data)
		out = append(out, Frame{TS: fr.TS, Key: fr.Key, Data: data})
		return nil
	})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	return out
}

func TestAppendQueryRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	base := t0.UnixNano()
	for i := 0; i < 100; i++ {
		data := []byte(fmt.Sprintf(`{"seq":%d}`, i))
		if err := s.Append("findings", base+int64(i), uint64(1+i%4), data); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got := collect(t, s, "findings", 0, base+1000, KeyAny)
	if len(got) != 100 {
		t.Fatalf("got %d frames, want 100", len(got))
	}
	for i, fr := range got {
		if fr.TS != base+int64(i) {
			t.Fatalf("frame %d: ts %d, want %d", i, fr.TS, base+int64(i))
		}
		if want := fmt.Sprintf(`{"seq":%d}`, i); string(fr.Data) != want {
			t.Fatalf("frame %d: data %q, want %q", i, fr.Data, want)
		}
		if fr.Key != uint64(1+i%4) {
			t.Fatalf("frame %d: key %d, want %d", i, fr.Key, 1+i%4)
		}
	}
}

func TestQueryKeyAndWindowFilter(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	base := t0.UnixNano()
	for i := 0; i < 60; i++ {
		if err := s.Append("ends", base+int64(i)*1e9, uint64(1+i%3), []byte{byte(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Key filter: every third frame has key 2.
	byKey := collect(t, s, "ends", 0, base+100e9, 2)
	if len(byKey) != 20 {
		t.Fatalf("key filter: got %d frames, want 20", len(byKey))
	}
	for _, fr := range byKey {
		if fr.Key != 2 {
			t.Fatalf("key filter leaked key %d", fr.Key)
		}
	}
	// Window: seconds [10, 19] inclusive.
	win := collect(t, s, "ends", base+10e9, base+19e9, KeyAny)
	if len(win) != 10 {
		t.Fatalf("window: got %d frames, want 10", len(win))
	}
	if win[0].Data[0] != 10 || win[9].Data[0] != 19 {
		t.Fatalf("window edges wrong: %d..%d", win[0].Data[0], win[9].Data[0])
	}
	// Unknown series: no frames, no error.
	if got := collect(t, s, "nope", 0, base+100e9, KeyAny); len(got) != 0 {
		t.Fatalf("unknown series returned %d frames", len(got))
	}
}

func TestSegmentRollAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, func(o *Options) { o.SegmentBytes = 1 << 10 })
	base := t0.UnixNano()
	payload := bytes.Repeat([]byte("x"), 100)
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Append("findings", base+int64(i), 7, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := s.Stats()["findings"]
	if st.Segments < 3 {
		t.Fatalf("expected >=3 segments after roll, got %d", st.Segments)
	}
	if st.Frames != n {
		t.Fatalf("stats frames %d, want %d", st.Frames, n)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: everything survives, and appends continue in the tail.
	s2 := openTest(t, dir, func(o *Options) { o.SegmentBytes = 1 << 10 })
	if got := collect(t, s2, "findings", 0, base+1e9, KeyAny); len(got) != n {
		t.Fatalf("after reopen: %d frames, want %d", len(got), n)
	}
	if err := s2.Append("findings", base+int64(n), 7, payload); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if got := collect(t, s2, "findings", 0, base+1e9, KeyAny); len(got) != n+1 {
		t.Fatalf("after reopen+append: %d frames, want %d", len(got), n+1)
	}
}

func TestQuerySkipsNonOverlappingSegments(t *testing.T) {
	s := openTest(t, t.TempDir(), func(o *Options) { o.SegmentBytes = 1 << 10 })
	base := t0.UnixNano()
	payload := bytes.Repeat([]byte("y"), 200)
	for i := 0; i < 40; i++ {
		if err := s.Append("findings", base+int64(i)*1e9, 1, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Delete the files of segments outside the queried window; if Query
	// correctly prunes by [minTS, maxTS] it never notices.
	s.mu.Lock()
	sr := s.series["findings"]
	s.mu.Unlock()
	sr.mu.Lock()
	if sr.bw != nil {
		sr.bw.Flush()
	}
	since, until := base+35*1e9, base+39*1e9
	for _, g := range sr.segs {
		if g != sr.active && !g.overlaps(since, until) {
			os.Rename(g.path, g.path+".hidden")
		}
	}
	sr.mu.Unlock()
	got := collect(t, s, "findings", since, until, KeyAny)
	if len(got) != 5 {
		t.Fatalf("pruned query: %d frames, want 5", len(got))
	}
	// Restore so Close/cleanup sees a sane directory.
	sr.mu.Lock()
	for _, g := range sr.segs {
		os.Rename(g.path+".hidden", g.path)
	}
	sr.mu.Unlock()
}

func TestRetentionCompaction(t *testing.T) {
	now := t0
	s := openTest(t, t.TempDir(), func(o *Options) {
		o.SegmentBytes = 1 << 10
		o.Retention = time.Hour
		o.Now = func() time.Time { return now }
	})
	payload := bytes.Repeat([]byte("z"), 200)
	old := t0.Add(-3 * time.Hour).UnixNano()
	fresh := t0.Add(-time.Minute).UnixNano()
	for i := 0; i < 20; i++ {
		if err := s.Append("findings", old+int64(i), 1, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := s.Append("findings", fresh+int64(i), 1, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	before := s.Stats()["findings"]
	stats, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if stats.SegmentsDeleted == 0 || stats.FramesDropped == 0 {
		t.Fatalf("compaction deleted nothing: %+v (before: %+v)", stats, before)
	}
	got := collect(t, s, "findings", 0, t0.UnixNano(), KeyAny)
	for _, fr := range got {
		if fr.TS < t0.Add(-time.Hour).UnixNano() {
			t.Fatalf("aged frame survived retention: ts %d", fr.TS)
		}
	}
	if len(got) < 20 {
		t.Fatalf("retention ate fresh frames: %d left, want >=20", len(got))
	}
	// A second pass is a no-op.
	stats2, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact 2: %v", err)
	}
	if stats2.SegmentsDeleted != 0 {
		t.Fatalf("second compaction deleted %d segments", stats2.SegmentsDeleted)
	}
}

func TestRetentionNeverTouchesActiveSegment(t *testing.T) {
	s := openTest(t, t.TempDir(), func(o *Options) { o.Retention = time.Hour })
	old := t0.Add(-3 * time.Hour).UnixNano()
	if err := s.Append("findings", old, 1, []byte("keep")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	stats, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if stats.SegmentsDeleted != 0 {
		t.Fatalf("compaction deleted the active segment")
	}
	if got := collect(t, s, "findings", 0, t0.UnixNano(), KeyAny); len(got) != 1 {
		t.Fatalf("active frame lost: %d frames", len(got))
	}
}

// sumDoc is the trivial mergeable payload used by downsampling tests:
// an 8-byte LE counter; merging sums the counters.
func sumMerge(window []Frame) (Frame, error) {
	var total uint64
	for _, fr := range window {
		total += binary.LittleEndian.Uint64(fr.Data)
	}
	var data [8]byte
	binary.LittleEndian.PutUint64(data[:], total)
	return Frame{TS: window[len(window)-1].TS, Key: window[0].Key, Data: data[:]}, nil
}

func TestDownsampling(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, func(o *Options) {
		o.SegmentBytes = 1 << 10
		o.Downsample = map[string]Downsampler{
			"hist": {After: time.Hour, Window: 10 * time.Second, Merge: sumMerge},
		}
	})
	// 60 one-per-second frames, all older than After, each counting 1.
	base := t0.Add(-2 * time.Hour).UnixNano()
	var one [8]byte
	binary.LittleEndian.PutUint64(one[:], 1)
	for i := 0; i < 60; i++ {
		if err := s.Append("hist", base+int64(i)*1e9, 0, one[:]); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Seal the active segment so the whole series is eligible: roll by
	// appending a fresh frame after forcing a seal via size is fiddly, so
	// close and reopen — reopened tails stay appendable but the test only
	// needs the *sealed* segments downsampled.
	sealedFrames := func() int {
		st := s.Stats()["hist"]
		return st.Frames
	}
	before := sealedFrames()
	stats, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if stats.SegmentsDownsampled == 0 || stats.FramesMerged == 0 {
		t.Fatalf("downsampling did nothing: %+v (frames before %d)", stats, before)
	}
	after := sealedFrames()
	if after >= before {
		t.Fatalf("downsampling did not shrink: %d -> %d", before, after)
	}
	// The counters must be conserved: total across merged frames == 60.
	var total uint64
	for _, fr := range collect(t, s, "hist", 0, t0.UnixNano(), KeyAny) {
		total += binary.LittleEndian.Uint64(fr.Data)
	}
	if total != 60 {
		t.Fatalf("merge lost data: total %d, want 60", total)
	}
	// Downsampled segments are flagged on disk and not re-downsampled.
	stats2, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact 2: %v", err)
	}
	if stats2.SegmentsDownsampled != 0 {
		t.Fatalf("re-downsampled already-coarse segments: %+v", stats2)
	}
	// Survives reopen: the flag is in the header, not just memory.
	s.Close()
	s2 := openTest(t, dir, func(o *Options) {
		o.SegmentBytes = 1 << 10
		o.Downsample = map[string]Downsampler{
			"hist": {After: time.Hour, Window: 10 * time.Second, Merge: sumMerge},
		}
	})
	stats3, err := s2.Compact()
	if err != nil {
		t.Fatalf("Compact 3: %v", err)
	}
	if stats3.SegmentsDownsampled != 0 {
		t.Fatalf("downsampled flag lost across reopen: %+v", stats3)
	}
	var total2 uint64
	for _, fr := range collect(t, s2, "hist", 0, t0.UnixNano(), KeyAny) {
		total2 += binary.LittleEndian.Uint64(fr.Data)
	}
	if total2 != 60 {
		t.Fatalf("reopen after downsample lost data: total %d, want 60", total2)
	}
}

func TestConcurrentAppendAndQuery(t *testing.T) {
	s := openTest(t, t.TempDir(), func(o *Options) { o.SegmentBytes = 4 << 10 })
	base := t0.UnixNano()
	const perSeries = 2000
	var wg sync.WaitGroup
	for _, name := range []string{"findings", "ends", "hist"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < perSeries; i++ {
				if err := s.Append(name, base+int64(i), uint64(1+i%8), []byte(name)); err != nil {
					t.Errorf("Append %s: %v", name, err)
					return
				}
			}
		}(name)
	}
	// Concurrent readers racing the writers: counts may be partial but
	// frames must never be corrupt.
	var rg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Query("findings", 0, base+perSeries, KeyAny, func(fr Frame) error {
					if string(fr.Data) != "findings" {
						t.Errorf("corrupt frame data %q", fr.Data)
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	for _, name := range []string{"findings", "ends", "hist"} {
		if got := collect(t, s, name, 0, base+perSeries, KeyAny); len(got) != perSeries {
			t.Fatalf("%s: %d frames, want %d", name, len(got), perSeries)
		}
	}
}

func TestBadSeriesName(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	for _, bad := range []string{"", "a/b", "..", "x y", "série"} {
		if err := s.Append(bad, 1, 0, []byte("x")); err == nil {
			t.Fatalf("series name %q accepted", bad)
		}
	}
}

func TestOpenRemovesStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	if err := s.Append("findings", t0.UnixNano(), 1, []byte("x")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	s.Close()
	tmp := filepath.Join(dir, "findings", "00000001.seg.tmp")
	if err := os.WriteFile(tmp, []byte("garbage from a dead compactor"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, nil)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived Open: %v", err)
	}
	if got := collect(t, s2, "findings", 0, t0.UnixNano(), KeyAny); len(got) != 1 {
		t.Fatalf("reopen with temp garbage lost data: %d frames", len(got))
	}
}

func TestCloseIdempotentAndAppendAfterClose(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Append("findings", 1, 0, []byte("x")); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

// TestDiskFullSurfacesAndPreservesPrefix drives the WrapWriter fault
// seam with a faults.FullWriter: once the simulated volume fills, Sync
// must surface ErrDiskFull to the caller, and everything durably synced
// before the fault must survive a reopen byte-for-byte — the torn-tail
// discipline under ENOSPC instead of a crash.
func TestDiskFullSurfacesAndPreservesPrefix(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Dir:          dir,
		CompactEvery: -1,
		SyncEvery:    -1,
		Now:          fixedClock(t0),
		WrapWriter: func(series string, w io.Writer) io.Writer {
			return &faults.FullWriter{W: w, N: 200}
		},
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	base := t0.UnixNano()
	synced := 0
	var full error
	for i := 0; i < 100; i++ {
		if err := s.Append("findings", base+int64(i), 1, []byte(fmt.Sprintf(`{"seq":%d}`, i))); err != nil {
			full = err
			break
		}
		if err := s.Sync(); err != nil {
			full = err
			break
		}
		synced++
	}
	if !errors.Is(full, faults.ErrDiskFull) {
		t.Fatalf("filled volume surfaced %v, want ErrDiskFull", full)
	}
	if synced == 0 || synced >= 100 {
		t.Fatalf("fault fired after %d synced frames; want mid-run", synced)
	}
	s.Close() // errors expected — the volume is still full

	// Reopen without the fault: the synced prefix survives intact.
	r := openTest(t, dir, nil)
	got := collect(t, r, "findings", 0, base+1000, KeyAny)
	if len(got) != synced {
		t.Fatalf("recovered %d frames, want %d", len(got), synced)
	}
	for i, fr := range got {
		if want := fmt.Sprintf(`{"seq":%d}`, i); string(fr.Data) != want {
			t.Fatalf("frame %d: data %q, want %q", i, fr.Data, want)
		}
	}
}

// TestSyncSeries: the single-series durability point flushes the named
// series' buffered frames to its segment file without touching other
// series, and syncing an unknown series is a no-op.
func TestSyncSeries(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	if err := s.Append("ckpt", 10, 1, []byte("state-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("findings", 11, 1, []byte("finding-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncSeries("ckpt"); err != nil {
		t.Fatalf("SyncSeries: %v", err)
	}
	if err := s.SyncSeries("no-such-series"); err != nil {
		t.Fatalf("SyncSeries on unknown series: %v", err)
	}
	// The ckpt frame must be on disk now: read the active segment file
	// directly, without closing the store (a crash would do neither).
	segs, err := filepath.Glob(filepath.Join(dir, "ckpt", "*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("ckpt segments: %v %v", segs, err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("state-1")) {
		t.Fatalf("ckpt segment does not contain the synced frame (%d bytes)", len(raw))
	}
}
