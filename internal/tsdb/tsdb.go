// Package tsdb is an embedded, append-only, crash-safe time-series/KV
// store: the durable memory behind blapd's otherwise ephemeral output.
// The daemon's JSONL findings and /metrics snapshots answer "what is
// happening right now"; this store answers "what happened to stream 7
// in the last 24 hours" — the question Stealtooth-style re-pairing
// abuse (detectable only against a device's historical pairing
// baseline) and Happy-MitM-style UI blindness (where the forensic
// record is the only place the compromise is visible) turn from a
// nicety into a requirement.
//
// Layout is one directory per series class (findings, stream-end
// statuses, histogram snapshots, ...), each holding a sequence of
// segment files. A segment is a fixed header followed by length-prefixed
// CRC-framed records; a frame carries a wall-clock timestamp (the time
// index), a uint64 key (the KV half — stream id for event series, zero
// for global series), and an opaque payload. The store never seeks and
// never rewrites in place: appends go to the tail of the active
// segment, segments seal at a size threshold, and the only mutations of
// sealed segments are whole-file replacement (downsampling, via
// write-temp-then-rename) and whole-file deletion (retention) — the
// discipline that makes recovery a scan, not a repair.
//
// Crash safety is the snoop.Scanner discipline applied to our own
// files: a torn tail — a crash mid-write, a full disk, a truncated copy
// — is detected by the length/CRC framing, and Open truncates the
// segment back to the last intact frame. Everything appended before the
// tear survives byte-for-byte; the tear itself costs at most the frames
// after the last clean boundary (bounded by the write buffer, see
// Options.SyncEvery).
//
// Retention and downsampling run in a background compactor (or via an
// explicit Compact call): segments whose newest frame has aged past the
// retention window are deleted whole, and series with a registered
// Downsampler have their aged segments rewritten with frames merged
// into coarser time windows — how histogram snapshots decay from
// per-interval resolution to per-hour resolution instead of being
// either hoarded or lost.
//
// Concurrency: every method is safe for concurrent use. Appends to
// different series never contend; appends to one series serialize on
// that series' mutex. Queries snapshot the segment list and then read
// files without holding the lock, so a long historical scan never
// stalls the append path; a reader that races the tail of the active
// segment simply stops at the first incomplete frame (it does not
// truncate — only Open repairs).
package tsdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Downsampler describes how one series' frames decay as they age:
// sealed segments whose newest frame is older than After are rewritten
// with every Window of frames merged into one by Merge.
type Downsampler struct {
	// After is the age at which a sealed segment becomes eligible for
	// downsampling (measured from its newest frame to Options.Now).
	After time.Duration
	// Window is the coarser resolution: frames whose timestamps fall in
	// the same Window-sized bucket are merged into one frame.
	Window time.Duration
	// Merge folds one window's frames (ascending append order, never
	// empty) into a single frame. Returning an error aborts the segment's
	// rewrite (the original is kept untouched and retried next cycle).
	Merge func(window []Frame) (Frame, error)
}

// Options configures a Store. The zero value of every field except Dir
// selects a sensible default.
type Options struct {
	// Dir is the store's root directory; created if missing. Required.
	Dir string
	// SegmentBytes is the size at which the active segment seals and a
	// new one starts. Default 4 MiB.
	SegmentBytes int64
	// Retention is how long frames are kept: sealed segments whose
	// newest frame is older than this are deleted by compaction. Zero
	// keeps everything.
	Retention time.Duration
	// CompactEvery is the background compaction interval. Default 1
	// minute; <0 disables the background loop (Compact can still be
	// called explicitly). The loop only runs when Retention or a
	// Downsampler gives it something to do.
	CompactEvery time.Duration
	// SyncEvery bounds the durability window: the active segment is
	// flushed to the OS this often. Default 1s; <0 flushes only on
	// segment seal, query, and Close. (Flush hands frames to the kernel;
	// Sync forces them to media — callers needing fsync semantics call
	// Store.Sync explicitly.)
	SyncEvery time.Duration
	// Downsample maps series names to their decay policy.
	Downsample map[string]Downsampler
	// Now overrides the clock used for retention and downsampling age
	// decisions. Default time.Now. Frame timestamps are always supplied
	// by the caller — the store itself never stamps data, which is what
	// keeps a fixed-clock run byte-deterministic.
	Now func() time.Time
	// WrapWriter, when set, wraps the active segment file of each series
	// before the store's buffering layer — a fault-injection seam (e.g.
	// faults.FullWriter for disk-full chaos) that sees exactly the bytes
	// the store appends. It must not reorder or drop bytes on success;
	// Sync and Close still go to the underlying file directly.
	WrapWriter func(series string, w io.Writer) io.Writer
}

func (o *Options) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = time.Minute
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// Frame is one stored record: a wall-clock timestamp (unix nanoseconds),
// a key (stream id for event series; zero when unused), and an opaque
// payload. Query hands frames to its callback with Data aliasing a
// reused read buffer — copy it if it outlives the call.
type Frame struct {
	TS   int64
	Key  uint64
	Data []byte
}

// Segment file format constants. A segment is:
//
//	[8]  magic "blaptsdb"
//	[4]  u32 version (1)
//	[4]  u32 flags (bit 0: downsampled)
//	then frames until EOF, each:
//	[4]  u32 length of the framed body (ts + key + data), LE
//	[4]  u32 CRC-32C of the framed body, LE
//	[8]  i64 timestamp, unix nanoseconds, LE
//	[8]  u64 key, LE
//	[n]  payload
//
// Everything after a length/CRC mismatch is a torn tail; Open truncates
// it away, queries stop in front of it.
const (
	segMagic        = "blaptsdb"
	segVersion      = 1
	segHeaderSize   = 16
	frameHeaderSize = 8         // length + crc
	frameMetaSize   = 16        // ts + key
	maxFrameData    = 16 << 20  // corrupt-length guard
	flagDownsampled = uint32(1) // segment rewritten to coarser resolution
	segSuffix       = ".seg"
	segTempSuffix   = ".seg.tmp"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

var seriesNameRE = regexp.MustCompile(`^[a-zA-Z0-9_-]{1,64}$`)

// segment is the in-memory index entry for one segment file.
type segment struct {
	path        string
	seq         uint64
	size        int64 // valid bytes (header + intact frames)
	frames      int
	minTS       int64 // math.MaxInt64-ish sentinel not needed: frames==0 => unset
	maxTS       int64
	downsampled bool
}

// overlaps reports whether any frame in the segment can fall in
// [since, until].
func (g *segment) overlaps(since, until int64) bool {
	if g.frames == 0 {
		return false
	}
	return g.minTS <= until && g.maxTS >= since
}

// series is one series class: its sealed segment index and active
// (appendable) segment.
type series struct {
	mu      sync.Mutex
	name    string
	dir     string
	segs    []*segment // ascending seq; last may be the active one
	active  *segment   // nil until the first append after a seal
	f       *os.File
	bw      *bufio.Writer
	scratch []byte

	lastFlush time.Time
}

// Store is an open tsdb directory. Safe for concurrent use.
type Store struct {
	opts Options

	mu     sync.Mutex
	series map[string]*series

	compactStop chan struct{}
	compactDone chan struct{}
	closed      bool
}

// Open opens (creating if necessary) the store rooted at opts.Dir,
// recovering every series found on disk: each segment is scanned
// front-to-back and truncated at the first torn or corrupt frame, so a
// crash mid-append costs at most the unflushed tail of the active
// segment and never poisons reads.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("tsdb: Options.Dir is required")
	}
	opts.defaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	s := &Store{
		opts:   opts,
		series: make(map[string]*series),
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !seriesNameRE.MatchString(e.Name()) {
			continue
		}
		sr, err := s.openSeries(e.Name())
		if err != nil {
			return nil, err
		}
		s.series[e.Name()] = sr
	}
	if opts.CompactEvery > 0 && (opts.Retention > 0 || len(opts.Downsample) > 0) {
		s.compactStop = make(chan struct{})
		s.compactDone = make(chan struct{})
		go s.compactLoop()
	}
	return s, nil
}

// openSeries recovers one series directory: stale temp files from an
// interrupted downsample are removed, every segment is scanned and
// truncated to its last intact frame, and the highest-seq segment is
// kept open for append if it still has room.
func (s *Store) openSeries(name string) (*series, error) {
	dir := filepath.Join(s.opts.Dir, name)
	sr := &series{name: name, dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tsdb: series %s: %w", name, err)
	}
	for _, e := range entries {
		n := e.Name()
		if strings.HasSuffix(n, segTempSuffix) {
			// A downsample rewrite died before its rename; the original
			// segment is intact, the temp is garbage.
			_ = os.Remove(filepath.Join(dir, n))
			continue
		}
		if !strings.HasSuffix(n, segSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(n, segSuffix), 10, 64)
		if err != nil {
			continue // not ours
		}
		g := &segment{path: filepath.Join(dir, n), seq: seq}
		if err := recoverSegment(g); err != nil {
			return nil, fmt.Errorf("tsdb: series %s: %w", name, err)
		}
		sr.segs = append(sr.segs, g)
	}
	sort.Slice(sr.segs, func(i, j int) bool { return sr.segs[i].seq < sr.segs[j].seq })
	// Reopen the newest segment for append when it has room and has not
	// been rewritten to a coarser resolution.
	if n := len(sr.segs); n > 0 {
		tail := sr.segs[n-1]
		if tail.size < s.opts.SegmentBytes && !tail.downsampled {
			f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("tsdb: series %s: %w", name, err)
			}
			sr.active = tail
			sr.f = f
			sr.bw = bufio.NewWriterSize(s.wrapWriter(name, f), 64<<10)
		}
	}
	return sr, nil
}

// recoverSegment scans one segment file, filling in the index entry and
// truncating the file at the first invalid frame. A file too short or
// mangled to hold even the header is truncated to empty (it will be
// rewritten if it ever becomes active again).
func recoverSegment(g *segment) error {
	f, err := os.OpenFile(g.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()

	valid, frames, minTS, maxTS, flags, err := scanSegment(f, nil)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			return fmt.Errorf("truncating torn tail of %s: %w", g.path, err)
		}
	}
	if valid == 0 {
		// The header itself was torn: nothing is recoverable, so rebuild
		// the segment as empty-but-valid so it can be appended to again.
		var hdr [segHeaderSize]byte
		copy(hdr[:8], segMagic)
		binary.LittleEndian.PutUint32(hdr[8:12], segVersion)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("rewriting torn header of %s: %w", g.path, err)
		}
		valid, flags = segHeaderSize, 0
	}
	g.size, g.frames, g.minTS, g.maxTS = valid, frames, minTS, maxTS
	g.downsampled = flags&flagDownsampled != 0
	return nil
}

// scanSegment reads a segment stream front to back, returning the byte
// offset of the last intact frame boundary, the frame count, the
// timestamp range, and the header flags. fn, when non-nil, observes
// every intact frame (Data aliases a reused buffer). A header that is
// short or wrong yields valid==0 (the whole file is a tear). Scanning
// never returns an error for torn or corrupt content — that is the
// recovery case — only for I/O failures other than EOF.
func scanSegment(r io.Reader, fn func(Frame) error) (valid int64, frames int, minTS, maxTS int64, flags uint32, err error) {
	br := bufio.NewReaderSize(r, 256<<10)
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, 0, 0, 0, nil // short header: empty/torn file
	}
	if string(hdr[:8]) != segMagic || binary.LittleEndian.Uint32(hdr[8:12]) != segVersion {
		return 0, 0, 0, 0, 0, nil // foreign or mangled header
	}
	flags = binary.LittleEndian.Uint32(hdr[12:16])
	valid = segHeaderSize

	var fh [frameHeaderSize]byte
	var body []byte
	for {
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			return valid, frames, minTS, maxTS, flags, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(fh[0:4])
		crc := binary.LittleEndian.Uint32(fh[4:8])
		if length < frameMetaSize || length > frameMetaSize+maxFrameData {
			return valid, frames, minTS, maxTS, flags, nil // corrupt length
		}
		if cap(body) < int(length) {
			body = make([]byte, length)
		}
		body = body[:length]
		if _, err := io.ReadFull(br, body); err != nil {
			return valid, frames, minTS, maxTS, flags, nil // torn body
		}
		if crc32.Checksum(body, crcTable) != crc {
			return valid, frames, minTS, maxTS, flags, nil // corrupt body
		}
		ts := int64(binary.LittleEndian.Uint64(body[0:8]))
		key := binary.LittleEndian.Uint64(body[8:16])
		if frames == 0 || ts < minTS {
			minTS = ts
		}
		if frames == 0 || ts > maxTS {
			maxTS = ts
		}
		frames++
		valid += frameHeaderSize + int64(length)
		if fn != nil {
			if err := fn(Frame{TS: ts, Key: key, Data: body[frameMetaSize:]}); err != nil {
				return valid, frames, minTS, maxTS, flags, err
			}
		}
	}
}

// appendFrame encodes one frame into buf (reused across calls).
func appendFrame(buf []byte, ts int64, key uint64, data []byte) []byte {
	length := uint32(frameMetaSize + len(data))
	var meta [frameMetaSize]byte
	binary.LittleEndian.PutUint64(meta[0:8], uint64(ts))
	binary.LittleEndian.PutUint64(meta[8:16], key)
	crc := crc32.Checksum(meta[:], crcTable)
	crc = crc32.Update(crc, crcTable, data)
	var fh [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(fh[0:4], length)
	binary.LittleEndian.PutUint32(fh[4:8], crc)
	buf = append(buf, fh[:]...)
	buf = append(buf, meta[:]...)
	return append(buf, data...)
}

// getSeries returns (creating on demand) the named series.
// wrapWriter applies the Options.WrapWriter fault seam, if configured,
// to a series' active segment file.
func (s *Store) wrapWriter(name string, f io.Writer) io.Writer {
	if s.opts.WrapWriter == nil {
		return f
	}
	return s.opts.WrapWriter(name, f)
}

func (s *Store) getSeries(name string) (*series, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("tsdb: store closed")
	}
	if sr, ok := s.series[name]; ok {
		return sr, nil
	}
	if !seriesNameRE.MatchString(name) {
		return nil, fmt.Errorf("tsdb: bad series name %q", name)
	}
	dir := filepath.Join(s.opts.Dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	sr := &series{name: name, dir: dir}
	s.series[name] = sr
	return sr, nil
}

// Append durably appends one frame to the named series, creating the
// series on first use and rolling to a new segment once the active one
// reaches Options.SegmentBytes. Timestamps are caller-supplied and
// should be roughly ascending per series; the store indexes whatever it
// is given. Data is copied before Append returns.
func (s *Store) Append(seriesName string, ts int64, key uint64, data []byte) error {
	sr, err := s.getSeries(seriesName)
	if err != nil {
		return err
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.active == nil {
		if err := s.rollLocked(sr); err != nil {
			return err
		}
	}
	sr.scratch = appendFrame(sr.scratch[:0], ts, key, data)
	if _, err := sr.bw.Write(sr.scratch); err != nil {
		return fmt.Errorf("tsdb: append %s: %w", seriesName, err)
	}
	g := sr.active
	if g.frames == 0 || ts < g.minTS {
		g.minTS = ts
	}
	if g.frames == 0 || ts > g.maxTS {
		g.maxTS = ts
	}
	g.frames++
	g.size += int64(len(sr.scratch))
	if g.size >= s.opts.SegmentBytes {
		if err := s.sealLocked(sr); err != nil {
			return err
		}
	} else if s.opts.SyncEvery > 0 {
		if now := s.opts.Now(); now.Sub(sr.lastFlush) >= s.opts.SyncEvery {
			sr.lastFlush = now
			if err := sr.bw.Flush(); err != nil {
				return fmt.Errorf("tsdb: flush %s: %w", seriesName, err)
			}
		}
	}
	return nil
}

// rollLocked starts the next segment for sr (series lock held).
func (s *Store) rollLocked(sr *series) error {
	var seq uint64 = 1
	if n := len(sr.segs); n > 0 {
		seq = sr.segs[n-1].seq + 1
	}
	path := filepath.Join(sr.dir, fmt.Sprintf("%08d%s", seq, segSuffix))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: roll %s: %w", sr.name, err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("tsdb: roll %s: %w", sr.name, err)
	}
	g := &segment{path: path, seq: seq, size: segHeaderSize}
	sr.segs = append(sr.segs, g)
	sr.active = g
	sr.f = f
	sr.bw = bufio.NewWriterSize(s.wrapWriter(sr.name, f), 64<<10)
	sr.lastFlush = s.opts.Now()
	return nil
}

// sealLocked flushes, syncs, and closes the active segment (series lock
// held). The next Append rolls a fresh one.
func (s *Store) sealLocked(sr *series) error {
	if sr.active == nil {
		return nil
	}
	if err := sr.bw.Flush(); err != nil {
		return fmt.Errorf("tsdb: seal %s: %w", sr.name, err)
	}
	if err := sr.f.Sync(); err != nil {
		return fmt.Errorf("tsdb: seal %s: %w", sr.name, err)
	}
	if err := sr.f.Close(); err != nil {
		return fmt.Errorf("tsdb: seal %s: %w", sr.name, err)
	}
	sr.active, sr.f, sr.bw = nil, nil, nil
	return nil
}

// Query streams every frame of the named series whose timestamp falls
// in [since, until] (unix nanoseconds, inclusive) to fn, in append
// order. key filters to one key when nonzero (KeyAny matches all).
// Frames are delivered with Data aliasing a reused buffer — copy what
// outlives the callback. Returning an error from fn stops the query and
// returns that error. Querying an unknown series returns no frames.
//
// Segments whose [minTS, maxTS] range misses the window are skipped
// without being opened — the time index that keeps a narrow window over
// a long history cheap. The append path is locked only long enough to
// flush buffered writes and snapshot the segment list; the file reads
// run unlocked, racing writers stop cleanly at the first incomplete
// frame.
func (s *Store) Query(seriesName string, since, until int64, key uint64, fn func(Frame) error) error {
	s.mu.Lock()
	sr, ok := s.series[seriesName]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	sr.mu.Lock()
	if sr.bw != nil {
		if err := sr.bw.Flush(); err != nil {
			sr.mu.Unlock()
			return fmt.Errorf("tsdb: query flush %s: %w", seriesName, err)
		}
	}
	segs := make([]*segment, 0, len(sr.segs))
	for _, g := range sr.segs {
		if g.overlaps(since, until) {
			segs = append(segs, g)
		}
	}
	sr.mu.Unlock()

	for _, g := range segs {
		f, err := os.Open(g.path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // compacted away between snapshot and read
			}
			return fmt.Errorf("tsdb: query %s: %w", seriesName, err)
		}
		_, _, _, _, _, err = scanSegment(f, func(fr Frame) error {
			if fr.TS < since || fr.TS > until {
				return nil
			}
			if key != KeyAny && fr.Key != key {
				return nil
			}
			return fn(fr)
		})
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// KeyAny is the Query key wildcard: match frames under every key.
const KeyAny uint64 = 0

// SeriesStats summarizes one series for operators and tests.
type SeriesStats struct {
	Segments int   `json:"segments"`
	Frames   int   `json:"frames"`
	Bytes    int64 `json:"bytes"`
	MinTS    int64 `json:"min_ts,omitempty"`
	MaxTS    int64 `json:"max_ts,omitempty"`
}

// Stats returns per-series segment/frame/byte counts.
func (s *Store) Stats() map[string]SeriesStats {
	s.mu.Lock()
	names := make([]string, 0, len(s.series))
	srs := make([]*series, 0, len(s.series))
	for n, sr := range s.series {
		names = append(names, n)
		srs = append(srs, sr)
	}
	s.mu.Unlock()
	out := make(map[string]SeriesStats, len(names))
	for i, sr := range srs {
		sr.mu.Lock()
		var st SeriesStats
		for _, g := range sr.segs {
			st.Segments++
			st.Frames += g.frames
			st.Bytes += g.size
			if g.frames == 0 {
				continue
			}
			if st.MinTS == 0 || g.minTS < st.MinTS {
				st.MinTS = g.minTS
			}
			if g.maxTS > st.MaxTS {
				st.MaxTS = g.maxTS
			}
		}
		sr.mu.Unlock()
		out[names[i]] = st
	}
	return out
}

// Sync flushes and fsyncs every series' active segment — the explicit
// durability point for callers that need stronger guarantees than the
// SyncEvery flush cadence.
func (s *Store) Sync() error {
	s.mu.Lock()
	srs := make([]*series, 0, len(s.series))
	for _, sr := range s.series {
		srs = append(srs, sr)
	}
	s.mu.Unlock()
	for _, sr := range srs {
		sr.mu.Lock()
		var err error
		if sr.bw != nil {
			err = sr.bw.Flush()
		}
		if err == nil && sr.f != nil {
			err = sr.f.Sync()
		}
		sr.mu.Unlock()
		if err != nil {
			return fmt.Errorf("tsdb: sync %s: %w", sr.name, err)
		}
	}
	return nil
}

// SyncSeries flushes and fsyncs one series' active segment. Callers
// with a durability point on a single low-volume series (the sentinel's
// checkpoint series) use this instead of Sync so they do not pay for
// forcing the high-volume series' append backlog through the journal on
// every call. Syncing a series that does not exist yet is a no-op.
func (s *Store) SyncSeries(name string) error {
	s.mu.Lock()
	sr := s.series[name]
	s.mu.Unlock()
	if sr == nil {
		return nil
	}
	sr.mu.Lock()
	var err error
	if sr.bw != nil {
		err = sr.bw.Flush()
	}
	if err == nil && sr.f != nil {
		err = sr.f.Sync()
	}
	sr.mu.Unlock()
	if err != nil {
		return fmt.Errorf("tsdb: sync %s: %w", sr.name, err)
	}
	return nil
}

// Close stops the background compactor, flushes and syncs every active
// segment, and closes the store. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stop, done := s.compactStop, s.compactDone
	srs := make([]*series, 0, len(s.series))
	for _, sr := range s.series {
		srs = append(srs, sr)
	}
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	var first error
	for _, sr := range srs {
		sr.mu.Lock()
		var err error
		if sr.bw != nil {
			err = sr.bw.Flush()
		}
		if err == nil && sr.f != nil {
			err = sr.f.Sync()
		}
		if sr.f != nil {
			if cerr := sr.f.Close(); err == nil {
				err = cerr
			}
			sr.active, sr.f, sr.bw = nil, nil, nil
		}
		sr.mu.Unlock()
		if err != nil && first == nil {
			first = fmt.Errorf("tsdb: close %s: %w", sr.name, err)
		}
	}
	return first
}
