package tsdb

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// CompactStats reports what one compaction pass did.
type CompactStats struct {
	SegmentsDeleted     int `json:"segments_deleted"`
	SegmentsDownsampled int `json:"segments_downsampled"`
	FramesDropped       int `json:"frames_dropped"`
	FramesMerged        int `json:"frames_merged"`
}

// Compact runs one retention + downsampling pass over every series.
// Sealed segments whose newest frame is older than Options.Retention
// are deleted whole — retention is a segment-granularity guarantee: a
// frame is removed only when everything in its segment has aged out,
// so the window is "at least Retention", never less. Series with a
// registered Downsampler then have their aged, sealed, not-yet-
// downsampled segments rewritten at the coarser resolution.
//
// The active segment is never touched. Each rewrite goes to a temp
// file that is fsynced and renamed over the original, so a crash
// mid-compaction leaves either the old or the new bytes, never a mix;
// Open removes orphaned temp files.
func (s *Store) Compact() (CompactStats, error) {
	now := s.opts.Now()
	var stats CompactStats

	s.mu.Lock()
	srs := make([]*series, 0, len(s.series))
	for _, sr := range s.series {
		srs = append(srs, sr)
	}
	s.mu.Unlock()

	for _, sr := range srs {
		if err := s.compactSeries(sr, now, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

func (s *Store) compactSeries(sr *series, now time.Time, stats *CompactStats) error {
	sr.mu.Lock()
	defer sr.mu.Unlock()

	// Retention: drop sealed segments that have aged out entirely.
	if s.opts.Retention > 0 {
		cutoff := now.Add(-s.opts.Retention).UnixNano()
		kept := sr.segs[:0]
		for _, g := range sr.segs {
			if g != sr.active && g.frames > 0 && g.maxTS < cutoff {
				if err := os.Remove(g.path); err != nil && !os.IsNotExist(err) {
					return fmt.Errorf("tsdb: compact %s: %w", sr.name, err)
				}
				stats.SegmentsDeleted++
				stats.FramesDropped += g.frames
				continue
			}
			kept = append(kept, g)
		}
		sr.segs = kept
	}

	// Downsampling: rewrite aged sealed segments at coarser resolution.
	ds, ok := s.opts.Downsample[sr.name]
	if !ok || ds.Merge == nil || ds.Window <= 0 {
		return nil
	}
	eligible := now.Add(-ds.After).UnixNano()
	for _, g := range sr.segs {
		if g == sr.active || g.downsampled || g.frames == 0 || g.maxTS >= eligible {
			continue
		}
		merged, err := downsampleSegment(g, ds)
		if err != nil {
			return fmt.Errorf("tsdb: downsample %s/%08d: %w", sr.name, g.seq, err)
		}
		if merged < 0 {
			continue // nothing to gain; flag it so we don't rescan forever
		}
		stats.SegmentsDownsampled++
		stats.FramesMerged += merged
	}
	return nil
}

// downsampleSegment rewrites g with frames merged into ds.Window
// buckets, updating the index entry in place. Returns the number of
// input frames that were folded away. The rewrite is atomic: temp file,
// fsync, rename.
func downsampleSegment(g *segment, ds Downsampler) (int, error) {
	f, err := os.Open(g.path)
	if err != nil {
		return 0, err
	}
	var frames []Frame
	_, _, _, _, _, err = scanSegment(f, func(fr Frame) error {
		data := make([]byte, len(fr.Data))
		copy(data, fr.Data)
		frames = append(frames, Frame{TS: fr.TS, Key: fr.Key, Data: data})
		return nil
	})
	f.Close()
	if err != nil {
		return 0, err
	}

	// Group consecutive frames by time bucket. Frames are in append
	// order; a series that interleaves buckets (clock skew) still merges
	// correctly because grouping is by bucket value, not adjacency.
	window := ds.Window.Nanoseconds()
	byBucket := make(map[int64][]Frame)
	var order []int64
	for _, fr := range frames {
		b := fr.TS / window
		if _, seen := byBucket[b]; !seen {
			order = append(order, b)
		}
		byBucket[b] = append(byBucket[b], fr)
	}

	var out []Frame
	for _, b := range order {
		in := byBucket[b]
		if len(in) == 1 {
			out = append(out, in[0])
			continue
		}
		m, err := ds.Merge(in)
		if err != nil {
			return 0, err
		}
		out = append(out, m)
	}

	tmp := g.path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp) // no-op after successful rename

	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], segVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], flagDownsampled)
	if _, err := tf.Write(hdr[:]); err != nil {
		tf.Close()
		return 0, err
	}
	size := int64(segHeaderSize)
	nframes := 0
	var minTS, maxTS int64
	var buf []byte
	for _, fr := range out {
		buf = appendFrame(buf[:0], fr.TS, fr.Key, fr.Data)
		if _, err := tf.Write(buf); err != nil {
			tf.Close()
			return 0, err
		}
		if nframes == 0 || fr.TS < minTS {
			minTS = fr.TS
		}
		if nframes == 0 || fr.TS > maxTS {
			maxTS = fr.TS
		}
		nframes++
		size += int64(len(buf))
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return 0, err
	}
	if err := tf.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, g.path); err != nil {
		return 0, err
	}
	syncDir(filepath.Dir(g.path))

	mergedAway := g.frames - nframes
	g.size, g.frames, g.minTS, g.maxTS = size, nframes, minTS, maxTS
	g.downsampled = true
	return mergedAway, nil
}

// syncDir fsyncs a directory so a rename survives power loss. Errors
// are ignored: some filesystems reject directory fsync and the rename
// itself is already atomic at the VFS layer.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// compactLoop is the background compactor started by Open.
func (s *Store) compactLoop() {
	defer close(s.compactDone)
	t := time.NewTicker(s.opts.CompactEvery)
	defer t.Stop()
	for {
		select {
		case <-s.compactStop:
			return
		case <-t.C:
			_, _ = s.Compact() // next pass retries; Stats exposes state
		}
	}
}
