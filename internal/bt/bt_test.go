package bt

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseBDADDR(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"00:1a:7d:da:71:0a", "00:1a:7d:da:71:0a", true},
		{"00-1A-7D-DA-71-0A", "00:1a:7d:da:71:0a", true},
		{"001a7dda710a", "00:1a:7d:da:71:0a", true},
		{"00:1a:7d:da:71", "", false},
		{"zz:1a:7d:da:71:0a", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		got, err := ParseBDADDR(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseBDADDR(%q) err=%v", c.in, err)
			continue
		}
		if err != nil {
			if !errors.Is(err, ErrBadBDADDR) {
				t.Errorf("error should wrap ErrBadBDADDR: %v", err)
			}
			continue
		}
		if got.String() != c.want {
			t.Errorf("ParseBDADDR(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestBDADDRParts(t *testing.T) {
	a := MustBDADDR("00:1a:7d:da:71:0a")
	if a.NAP() != 0x001a {
		t.Errorf("NAP = %04x", a.NAP())
	}
	if a.UAP() != 0x7d {
		t.Errorf("UAP = %02x", a.UAP())
	}
	if a.LAP() != 0xda710a {
		t.Errorf("LAP = %06x", a.LAP())
	}
	if a.IsZero() {
		t.Error("non-zero addr reported zero")
	}
	if !(BDADDR{}).IsZero() {
		t.Error("zero addr not reported zero")
	}
}

func TestBDADDRLittleEndianRoundTrip(t *testing.T) {
	f := func(a BDADDR) bool {
		return BDADDRFromLittleEndian(a.LittleEndian()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	a := MustBDADDR("01:02:03:04:05:06")
	le := a.LittleEndian()
	if le != [6]byte{6, 5, 4, 3, 2, 1} {
		t.Errorf("LittleEndian = %v", le)
	}
}

func TestMustBDADDRPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBDADDR must panic on bad input")
		}
	}()
	MustBDADDR("nope")
}

func TestParseLinkKey(t *testing.T) {
	k, err := ParseLinkKey("71a70981f30d6af9e20adee8aafe3264")
	if err != nil {
		t.Fatal(err)
	}
	if k.String() != "71a70981f30d6af9e20adee8aafe3264" {
		t.Errorf("round trip: %s", k)
	}
	if _, err := ParseLinkKey("short"); !errors.Is(err, ErrBadLinkKey) {
		t.Errorf("want ErrBadLinkKey, got %v", err)
	}
	if _, err := ParseLinkKey("zz" + "00"[0:0] + "a70981f30d6af9e20adee8aafe3264"); err == nil {
		t.Error("bad hex accepted")
	}
	if !(LinkKey{}).IsZero() {
		t.Error("zero key not zero")
	}
}

func TestLinkKeyTypeNames(t *testing.T) {
	if KeyTypeUnauthenticatedP256.String() != "Unauthenticated (P-256)" {
		t.Errorf("got %s", KeyTypeUnauthenticatedP256)
	}
	if LinkKeyType(0xEE).String() == "" {
		t.Error("unknown type must render")
	}
}

func TestClassOfDevice(t *testing.T) {
	if CODMobilePhone.MajorDeviceClass() != MajorClassPhone {
		t.Errorf("0x5A020C major class = %02x", CODMobilePhone.MajorDeviceClass())
	}
	if CODHandsFree.MajorDeviceClass() != MajorClassAudio {
		t.Errorf("0x3C0404 major class = %02x", CODHandsFree.MajorDeviceClass())
	}
	f := func(c uint32) bool {
		cod := ClassOfDevice(c & 0xFFFFFF)
		return CODFromBytes(cod.Bytes()) == cod
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLTAddrValid(t *testing.T) {
	if LTAddr(0).Valid() || LTAddr(8).Valid() {
		t.Error("0 and 8 are invalid LT_ADDRs")
	}
	if !LTAddr(1).Valid() || !LTAddr(7).Valid() {
		t.Error("1..7 are valid LT_ADDRs")
	}
}

func TestVersionPredicates(t *testing.T) {
	if V4_2.AtLeast5() {
		t.Error("4.2 is not >= 5.0")
	}
	for _, v := range []Version{V5_0, V5_1, V5_2, V5_3} {
		if !v.AtLeast5() {
			t.Errorf("%s should be >= 5.0", v)
		}
	}
	if V5_0.String() != "v5.0" {
		t.Errorf("String: %s", V5_0)
	}
}

func TestIOCapabilityStrings(t *testing.T) {
	if NoInputNoOutput.String() != "NoInputNoOutput" || DisplayYesNo.String() != "DisplayYesNo" {
		t.Error("capability names wrong")
	}
	if !NoInputNoOutput.Valid() || IOCapability(9).Valid() {
		t.Error("validity wrong")
	}
}

func TestStringersExhaustive(t *testing.T) {
	for _, m := range []AssociationModel{JustWorks, NumericComparison, PasskeyEntry, OutOfBand, AssociationModel(99)} {
		if m.String() == "" {
			t.Errorf("AssociationModel(%d) renders empty", m)
		}
	}
	for c := IOCapability(0); c < 6; c++ {
		if c.String() == "" {
			t.Errorf("IOCapability(%d) renders empty", c)
		}
	}
	for v := Version(0); v < 10; v++ {
		if v.String() == "" {
			t.Errorf("Version(%d) renders empty", v)
		}
	}
	for _, kt := range []LinkKeyType{KeyTypeCombination, KeyTypeLocalUnit, KeyTypeRemoteUnit,
		KeyTypeDebugCombination, KeyTypeUnauthenticatedP192, KeyTypeAuthenticatedP192,
		KeyTypeChangedCombination, KeyTypeUnauthenticatedP256, KeyTypeAuthenticatedP256} {
		if kt.String() == "" {
			t.Errorf("LinkKeyType(%d) renders empty", kt)
		}
	}
}

func TestCODFields(t *testing.T) {
	// 0x5A020C: service classes 0x2D0, major 0x02 (phone), minor 0x03.
	if CODMobilePhone.MinorDeviceClass() != 0x03 {
		t.Errorf("minor = %#x", CODMobilePhone.MinorDeviceClass())
	}
	if CODMobilePhone.MajorServiceClasses() != 0x2D0 {
		t.Errorf("services = %#x", CODMobilePhone.MajorServiceClasses())
	}
	for _, c := range []ClassOfDevice{CODMobilePhone, CODHandsFree, CODComputer, CODHeadset, ClassOfDevice(0)} {
		if c.String() == "" {
			t.Errorf("COD %#x renders empty", uint32(c))
		}
	}
}

func TestMustLinkKey(t *testing.T) {
	k := MustLinkKey("000102030405060708090a0b0c0d0e0f")
	if k[0] != 0 || k[15] != 0x0f {
		t.Fatalf("parse: %v", k)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLinkKey must panic on bad input")
		}
	}()
	MustLinkKey("nope")
}
