package bt

// Stage1Mapping captures what SSP authentication stage 1 does for a given
// pair of IO capabilities: the association model, which side displays the
// six-digit value, which side must confirm it, whether the result is
// authenticated (MITM-protected), and whether the specification mandates a
// bare "pair yes/no" dialog (the v5.0+ rule from the paper's Fig. 7b).
//
// "Initiator" is the pairing initiator (device A in Fig. 7), "Responder"
// is device B.
type Stage1Mapping struct {
	Model AssociationModel

	// DisplayInitiator/DisplayResponder report whether the side shows the
	// six-digit confirmation value.
	DisplayInitiator bool
	DisplayResponder bool

	// ConfirmInitiator/ConfirmResponder report whether the side requires a
	// user yes/no on the displayed value. A side that displays without
	// confirming auto-confirms.
	ConfirmInitiator bool
	ConfirmResponder bool

	// PairPopupInitiator/PairPopupResponder report whether the v5.0+
	// specification mandates a bare "accept pairing?" dialog (no value
	// shown) on a DisplayYesNo side when the peer is NoInputNoOutput.
	PairPopupInitiator bool
	PairPopupResponder bool

	// Authenticated reports whether stage 1 provides MITM protection.
	Authenticated bool
}

// Stage1MappingFor computes the stage-1 behaviour for a pairing initiator
// and responder with the given capabilities under the given core version.
// It implements the IO capability mapping of Core spec Vol 3 Part C Table
// 5.7, restricted to the four BR/EDR capabilities, including the v5.0+
// mandated confirmation dialog the paper's Fig. 7 contrasts.
func Stage1MappingFor(initiator, responder IOCapability, v Version) Stage1Mapping {
	m := Stage1Mapping{Model: JustWorks}

	hasKeyboard := func(c IOCapability) bool { return c == KeyboardOnly }
	hasDisplay := func(c IOCapability) bool { return c == DisplayOnly || c == DisplayYesNo }

	switch {
	case initiator == NoInputNoOutput || responder == NoInputNoOutput:
		// Numeric comparison with automatic confirmation on both devices:
		// effectively Just Works, never authenticated.
		m.Model = JustWorks
		if v.AtLeast5() {
			// v5.0+ mandates a bare pairing confirmation on a DisplayYesNo
			// peer of a NoInputNoOutput device (paper Fig. 7b).
			m.PairPopupInitiator = initiator == DisplayYesNo
			m.PairPopupResponder = responder == DisplayYesNo
		}

	case hasKeyboard(initiator) && hasKeyboard(responder):
		// Both keyboards: each side types the same passkey.
		m.Model = PasskeyEntry
		m.Authenticated = true

	case hasKeyboard(initiator) || hasKeyboard(responder):
		// Keyboard on one side, display on the other: passkey entry,
		// display side shows the passkey.
		m.Model = PasskeyEntry
		m.Authenticated = true
		m.DisplayInitiator = hasDisplay(initiator)
		m.DisplayResponder = hasDisplay(responder)

	case initiator == DisplayYesNo && responder == DisplayYesNo:
		// Full numeric comparison: both display, both confirm.
		m.Model = NumericComparison
		m.Authenticated = true
		m.DisplayInitiator, m.DisplayResponder = true, true
		m.ConfirmInitiator, m.ConfirmResponder = true, true

	default:
		// At least one DisplayOnly: numeric comparison with automatic
		// confirmation on the DisplayOnly side(s) — unauthenticated, so
		// the effective model is Just Works.
		m.Model = JustWorks
		m.DisplayInitiator = hasDisplay(initiator)
		m.DisplayResponder = hasDisplay(responder)
		m.ConfirmInitiator = initiator == DisplayYesNo
		m.ConfirmResponder = responder == DisplayYesNo
	}
	return m
}

// RequiresUserAction reports whether the mapping requires any user
// interaction on the given role ("initiator" when init is true) before
// pairing completes: confirming a numeric value, answering a pairing
// popup, or typing a passkey.
func (m Stage1Mapping) RequiresUserAction(init bool) bool {
	if init {
		return m.ConfirmInitiator || m.PairPopupInitiator || (m.Model == PasskeyEntry && !m.DisplayInitiator)
	}
	return m.ConfirmResponder || m.PairPopupResponder || (m.Model == PasskeyEntry && !m.DisplayResponder)
}
