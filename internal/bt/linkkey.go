package bt

import (
	"encoding/hex"
	"errors"
	"fmt"
)

// LinkKey is the 128-bit shared secret produced by pairing and consumed by
// LMP authentication and encryption-key generation. It is the value the
// link key extraction attack recovers from HCI dumps.
type LinkKey [16]byte

// ErrBadLinkKey reports a malformed textual link key.
var ErrBadLinkKey = errors.New("bt: malformed link key")

// ParseLinkKey parses 32 hex digits (the bt_config.conf representation).
func ParseLinkKey(s string) (LinkKey, error) {
	var k LinkKey
	if len(s) != 32 {
		return k, fmt.Errorf("%w: %q", ErrBadLinkKey, s)
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("%w: %q: %v", ErrBadLinkKey, s, err)
	}
	copy(k[:], b)
	return k, nil
}

// MustLinkKey is ParseLinkKey that panics on error; for tests.
func MustLinkKey(s string) LinkKey {
	k, err := ParseLinkKey(s)
	if err != nil {
		panic(err)
	}
	return k
}

// String renders the key as 32 lowercase hex digits.
func (k LinkKey) String() string { return hex.EncodeToString(k[:]) }

// IsZero reports whether the key is all-zero (absent).
func (k LinkKey) IsZero() bool { return k == LinkKey{} }

// LinkKeyType mirrors the HCI link key type octet reported alongside
// HCI_Link_Key_Notification (Core spec Vol 4 Part E §7.7.24).
type LinkKeyType uint8

// Link key types from the HCI specification.
const (
	KeyTypeCombination         LinkKeyType = 0x00
	KeyTypeLocalUnit           LinkKeyType = 0x01
	KeyTypeRemoteUnit          LinkKeyType = 0x02
	KeyTypeDebugCombination    LinkKeyType = 0x03
	KeyTypeUnauthenticatedP192 LinkKeyType = 0x04
	KeyTypeAuthenticatedP192   LinkKeyType = 0x05
	KeyTypeChangedCombination  LinkKeyType = 0x06
	KeyTypeUnauthenticatedP256 LinkKeyType = 0x07
	KeyTypeAuthenticatedP256   LinkKeyType = 0x08
)

func (t LinkKeyType) String() string {
	switch t {
	case KeyTypeCombination:
		return "Combination"
	case KeyTypeLocalUnit:
		return "Local Unit"
	case KeyTypeRemoteUnit:
		return "Remote Unit"
	case KeyTypeDebugCombination:
		return "Debug Combination"
	case KeyTypeUnauthenticatedP192:
		return "Unauthenticated (P-192)"
	case KeyTypeAuthenticatedP192:
		return "Authenticated (P-192)"
	case KeyTypeChangedCombination:
		return "Changed Combination"
	case KeyTypeUnauthenticatedP256:
		return "Unauthenticated (P-256)"
	case KeyTypeAuthenticatedP256:
		return "Authenticated (P-256)"
	default:
		return fmt.Sprintf("bt: link key type 0x%02x", uint8(t))
	}
}
