package bt

import "testing"

// TestFig7Mapping verifies the paper's Fig. 7 quadrants for both spec
// generations.
func TestFig7Mapping(t *testing.T) {
	// v4.2 and lower (Fig. 7a): NoInputNoOutput combinations are
	// automatic — no mandated dialogs anywhere.
	for _, init := range []IOCapability{DisplayYesNo, NoInputNoOutput} {
		for _, resp := range []IOCapability{DisplayYesNo, NoInputNoOutput} {
			m := Stage1MappingFor(init, resp, V4_2)
			if init == DisplayYesNo && resp == DisplayYesNo {
				if m.Model != NumericComparison || !m.Authenticated {
					t.Errorf("4.2 DYN/DYN: %+v", m)
				}
				if !m.ConfirmInitiator || !m.ConfirmResponder {
					t.Errorf("4.2 DYN/DYN must confirm on both: %+v", m)
				}
				continue
			}
			if m.Model != JustWorks || m.Authenticated {
				t.Errorf("4.2 %s/%s should be Just Works unauthenticated: %+v", init, resp, m)
			}
			if m.PairPopupInitiator || m.PairPopupResponder {
				t.Errorf("4.2 must not mandate consent dialogs: %+v", m)
			}
		}
	}

	// v5.0 and higher (Fig. 7b): a DisplayYesNo device paired against
	// NoInputNoOutput must be asked yes/no whether to pair — without
	// showing a confirmation value.
	m := Stage1MappingFor(NoInputNoOutput, DisplayYesNo, V5_0)
	if !m.PairPopupResponder || m.PairPopupInitiator {
		t.Errorf("5.0 NINO initiator vs DYN responder: %+v", m)
	}
	if m.DisplayResponder || m.ConfirmResponder {
		t.Errorf("the consent dialog must not show the value: %+v", m)
	}
	m = Stage1MappingFor(DisplayYesNo, NoInputNoOutput, V5_0)
	if !m.PairPopupInitiator || m.PairPopupResponder {
		t.Errorf("5.0 DYN initiator vs NINO responder: %+v", m)
	}
	m = Stage1MappingFor(NoInputNoOutput, NoInputNoOutput, V5_0)
	if m.PairPopupInitiator || m.PairPopupResponder {
		t.Errorf("5.0 NINO/NINO stays automatic: %+v", m)
	}
	m = Stage1MappingFor(DisplayYesNo, DisplayYesNo, V5_0)
	if m.Model != NumericComparison {
		t.Errorf("5.0 DYN/DYN stays numeric comparison: %+v", m)
	}
}

func TestMappingKeyboardCombos(t *testing.T) {
	m := Stage1MappingFor(KeyboardOnly, DisplayYesNo, V5_0)
	if m.Model != PasskeyEntry || !m.Authenticated {
		t.Errorf("keyboard vs display must be passkey entry: %+v", m)
	}
	if m.DisplayInitiator || !m.DisplayResponder {
		t.Errorf("display side shows the passkey: %+v", m)
	}
	m = Stage1MappingFor(KeyboardOnly, KeyboardOnly, V5_0)
	if m.Model != PasskeyEntry {
		t.Errorf("keyboard/keyboard: %+v", m)
	}
	// Keyboard against NoInputNoOutput collapses to Just Works.
	m = Stage1MappingFor(KeyboardOnly, NoInputNoOutput, V5_0)
	if m.Model != JustWorks || m.Authenticated {
		t.Errorf("keyboard vs NINO: %+v", m)
	}
}

func TestMappingDisplayOnlyCombos(t *testing.T) {
	// DisplayOnly cannot confirm, so numeric comparison degenerates to an
	// unauthenticated Just Works regardless of the peer's display.
	m := Stage1MappingFor(DisplayOnly, DisplayYesNo, V5_0)
	if m.Model != JustWorks || m.Authenticated {
		t.Errorf("DisplayOnly vs DYN: %+v", m)
	}
	if m.ConfirmInitiator {
		t.Errorf("DisplayOnly cannot confirm: %+v", m)
	}
	if !m.ConfirmResponder {
		t.Errorf("the DYN side still confirms the value: %+v", m)
	}
	m = Stage1MappingFor(DisplayOnly, DisplayOnly, V5_0)
	if m.Model != JustWorks || m.ConfirmInitiator || m.ConfirmResponder {
		t.Errorf("DisplayOnly pair: %+v", m)
	}
}

func TestJustWorksNeverAuthenticated(t *testing.T) {
	all := []IOCapability{DisplayOnly, DisplayYesNo, KeyboardOnly, NoInputNoOutput}
	for _, v := range []Version{V4_2, V5_0, V5_3} {
		for _, a := range all {
			for _, b := range all {
				m := Stage1MappingFor(a, b, v)
				if m.Model == JustWorks && m.Authenticated {
					t.Errorf("Just Works can never be authenticated: %s/%s %s", a, b, v)
				}
				if (a == NoInputNoOutput || b == NoInputNoOutput) && m.Model != JustWorks {
					t.Errorf("NINO always forces Just Works: %s/%s %s -> %s", a, b, v, m.Model)
				}
			}
		}
	}
}

func TestRequiresUserAction(t *testing.T) {
	// Numeric comparison: both sides act.
	m := Stage1MappingFor(DisplayYesNo, DisplayYesNo, V5_0)
	if !m.RequiresUserAction(true) || !m.RequiresUserAction(false) {
		t.Error("numeric comparison requires both users")
	}
	// Just Works with NINO on both: nobody acts.
	m = Stage1MappingFor(NoInputNoOutput, NoInputNoOutput, V5_0)
	if m.RequiresUserAction(true) || m.RequiresUserAction(false) {
		t.Error("NINO/NINO must be silent")
	}
	// Passkey: the keyboard side types.
	m = Stage1MappingFor(KeyboardOnly, DisplayYesNo, V5_0)
	if !m.RequiresUserAction(true) {
		t.Error("keyboard initiator must type the passkey")
	}
}
