package bt

import "fmt"

// ClassOfDevice is the 24-bit Bluetooth class-of-device field advertised in
// inquiry responses. The paper's attack device changes its COD from mobile
// phone (0x5A020C) to hands-free (0x3C0404) to impersonate an accessory
// (Fig. 8).
type ClassOfDevice uint32

// Class-of-device values used in the paper.
const (
	CODMobilePhone ClassOfDevice = 0x5A020C
	CODHandsFree   ClassOfDevice = 0x3C0404
	CODComputer    ClassOfDevice = 0x104104
	CODHeadset     ClassOfDevice = 0x240404
)

// MajorDeviceClass returns bits 12..8 of the COD.
func (c ClassOfDevice) MajorDeviceClass() uint8 { return uint8((c >> 8) & 0x1F) }

// MinorDeviceClass returns bits 7..2 of the COD.
func (c ClassOfDevice) MinorDeviceClass() uint8 { return uint8((c >> 2) & 0x3F) }

// MajorServiceClasses returns bits 23..13 of the COD.
func (c ClassOfDevice) MajorServiceClasses() uint16 { return uint16((c >> 13) & 0x7FF) }

// Major device classes (Assigned Numbers, Baseband).
const (
	MajorClassMisc     = 0x00
	MajorClassComputer = 0x01
	MajorClassPhone    = 0x02
	MajorClassAudio    = 0x04
	MajorClassWearable = 0x07
)

func (c ClassOfDevice) String() string {
	var kind string
	switch c.MajorDeviceClass() {
	case MajorClassComputer:
		kind = "Computer"
	case MajorClassPhone:
		kind = "Phone"
	case MajorClassAudio:
		kind = "Audio/Video"
	case MajorClassWearable:
		kind = "Wearable"
	default:
		kind = "Misc"
	}
	return fmt.Sprintf("0x%06X (%s)", uint32(c), kind)
}

// Bytes returns the three COD octets in HCI wire order (little-endian).
func (c ClassOfDevice) Bytes() [3]byte {
	return [3]byte{byte(c), byte(c >> 8), byte(c >> 16)}
}

// CODFromBytes decodes three HCI wire-order octets.
func CODFromBytes(b [3]byte) ClassOfDevice {
	return ClassOfDevice(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16)
}

// ConnHandle is an HCI connection handle (12 bits used).
type ConnHandle uint16

// LTAddr is the 3-bit logical transport address a piconet master assigns to
// a slave at connection establishment. Once assigned, BDADDRs are no longer
// used to address traffic — the property the page blocking attack exploits.
type LTAddr uint8

// Valid reports whether the LT_ADDR is in the usable range 1..7.
func (a LTAddr) Valid() bool { return a >= 1 && a <= 7 }
