package bt

import "fmt"

// IOCapability is the SSP input/output capability a device advertises
// during the IO capability exchange (Core spec Vol 3 Part C §5.2.2.4).
type IOCapability uint8

// IO capabilities in HCI encoding order.
const (
	DisplayOnly     IOCapability = 0x00
	DisplayYesNo    IOCapability = 0x01
	KeyboardOnly    IOCapability = 0x02
	NoInputNoOutput IOCapability = 0x03
)

func (c IOCapability) String() string {
	switch c {
	case DisplayOnly:
		return "DisplayOnly"
	case DisplayYesNo:
		return "DisplayYesNo"
	case KeyboardOnly:
		return "KeyboardOnly"
	case NoInputNoOutput:
		return "NoInputNoOutput"
	default:
		return fmt.Sprintf("IOCapability(0x%02x)", uint8(c))
	}
}

// Valid reports whether c is one of the four defined capabilities.
func (c IOCapability) Valid() bool { return c <= NoInputNoOutput }

// AssociationModel is the SSP association model selected by the IO
// capability mapping.
type AssociationModel uint8

// Association models. OutOfBand is selected by OOB data presence rather
// than the IO mapping; it is included for completeness.
const (
	JustWorks AssociationModel = iota
	NumericComparison
	PasskeyEntry
	OutOfBand
)

func (m AssociationModel) String() string {
	switch m {
	case JustWorks:
		return "Just Works"
	case NumericComparison:
		return "Numeric Comparison"
	case PasskeyEntry:
		return "Passkey Entry"
	case OutOfBand:
		return "Out of Band"
	default:
		return fmt.Sprintf("AssociationModel(%d)", uint8(m))
	}
}

// Version identifies the Bluetooth core specification version a host stack
// implements. Only the distinctions the paper relies on are modeled: v4.2
// and lower auto-confirm Just Works when acting as pairing initiator, v5.0
// and higher mandate a confirmation popup on DisplayYesNo devices.
type Version uint8

// Core specification versions.
const (
	V2_1 Version = iota
	V4_0
	V4_1
	V4_2
	V5_0
	V5_1
	V5_2
	V5_3
)

func (v Version) String() string {
	names := [...]string{"2.1", "4.0", "4.1", "4.2", "5.0", "5.1", "5.2", "5.3"}
	if int(v) < len(names) {
		return "v" + names[v]
	}
	return fmt.Sprintf("Version(%d)", uint8(v))
}

// AtLeast5 reports whether the version mandates the Just Works
// confirmation dialog on DisplayYesNo devices (v5.0 or higher).
func (v Version) AtLeast5() bool { return v >= V5_0 }
