// Package bt defines the core Bluetooth BR/EDR value types shared by every
// layer of the BLAP simulator: device addresses, link keys, classes of
// device, IO capabilities, Bluetooth versions, and the Secure Simple
// Pairing association-model mapping from the specification (the paper's
// Fig. 7).
package bt

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// BDADDR is a 48-bit Bluetooth device address, stored big-endian
// (BDADDR[0] is the most significant byte of the NAP).
type BDADDR [6]byte

// ErrBadBDADDR reports a malformed textual Bluetooth address.
var ErrBadBDADDR = errors.New("bt: malformed BDADDR")

// ParseBDADDR parses "aa:bb:cc:dd:ee:ff" (case-insensitive, ':' or '-'
// separated, or 12 bare hex digits).
func ParseBDADDR(s string) (BDADDR, error) {
	var a BDADDR
	clean := strings.Map(func(r rune) rune {
		if r == ':' || r == '-' {
			return -1
		}
		return r
	}, s)
	if len(clean) != 12 {
		return a, fmt.Errorf("%w: %q", ErrBadBDADDR, s)
	}
	b, err := hex.DecodeString(clean)
	if err != nil {
		return a, fmt.Errorf("%w: %q: %v", ErrBadBDADDR, s, err)
	}
	copy(a[:], b)
	return a, nil
}

// MustBDADDR is ParseBDADDR that panics on error; for tests and catalogs.
func MustBDADDR(s string) BDADDR {
	a, err := ParseBDADDR(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the canonical colon-separated lowercase form.
func (a BDADDR) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// NAP returns the 16-bit non-significant address part (company id high).
func (a BDADDR) NAP() uint16 { return uint16(a[0])<<8 | uint16(a[1]) }

// UAP returns the 8-bit upper address part.
func (a BDADDR) UAP() uint8 { return a[2] }

// LAP returns the 24-bit lower address part used in access codes.
func (a BDADDR) LAP() uint32 { return uint32(a[3])<<16 | uint32(a[4])<<8 | uint32(a[5]) }

// IsZero reports whether the address is all-zero (unset).
func (a BDADDR) IsZero() bool { return a == BDADDR{} }

// LittleEndian returns the six address bytes in HCI wire order (least
// significant byte first), as they appear inside HCI command payloads.
func (a BDADDR) LittleEndian() [6]byte {
	var le [6]byte
	for i := range a {
		le[i] = a[5-i]
	}
	return le
}

// BDADDRFromLittleEndian converts six HCI wire-order bytes to a BDADDR.
func BDADDRFromLittleEndian(le [6]byte) BDADDR {
	var a BDADDR
	for i := range le {
		a[i] = le[5-i]
	}
	return a
}
