package hci

import (
	"errors"

	"repro/internal/bt"
)

// errShortParams reports that a typed parse ran out of parameter bytes.
var errShortParams = errors.New("short parameters")

// reader is a cursor over command/event parameter bytes. All HCI integers
// are little-endian; BDADDRs and link keys appear least-significant byte
// first on the wire.
type reader struct {
	buf []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = errShortParams
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

func (r *reader) u24() uint32 {
	b := r.take(3)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *reader) bytes(n int) []byte {
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

func (r *reader) addr() bt.BDADDR {
	b := r.take(6)
	if b == nil {
		return bt.BDADDR{}
	}
	var le [6]byte
	copy(le[:], b)
	return bt.BDADDRFromLittleEndian(le)
}

func (r *reader) key() bt.LinkKey {
	// Link keys are carried least-significant byte first, like addresses;
	// the paper's USB extraction (Fig. 11) reverses the bytes to present
	// the key in big-endian order.
	b := r.take(16)
	if b == nil {
		return bt.LinkKey{}
	}
	var k bt.LinkKey
	for i := 0; i < 16; i++ {
		k[i] = b[15-i]
	}
	return k
}

// writer builds parameter bytes.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = append(w.buf, byte(v), byte(v>>8)) }
func (w *writer) u24(v uint32) { w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16)) }
func (w *writer) u32(v uint32) { w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (w *writer) raw(b []byte) { w.buf = append(w.buf, b...) }

func (w *writer) addr(a bt.BDADDR) {
	le := a.LittleEndian()
	w.buf = append(w.buf, le[:]...)
}

func (w *writer) key(k bt.LinkKey) {
	for i := 15; i >= 0; i-- {
		w.buf = append(w.buf, k[i])
	}
}
