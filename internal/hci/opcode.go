// Package hci models the Bluetooth Host Controller Interface: H4 packet
// framing, the command and event structures the BLAP attacks depend on
// (link key requests and notifications, connection and authentication
// management, SSP IO capability exchange), a binary codec, and a tappable
// transport abstraction used by the snoop logger and the USB sniffer.
package hci

import "fmt"

// Opcode is an HCI command opcode: OGF (6 bits) << 10 | OCF (10 bits).
type Opcode uint16

// OpcodeOf assembles an opcode from its group and command fields.
func OpcodeOf(ogf, ocf uint16) Opcode { return Opcode(ogf<<10 | ocf&0x3FF) }

// OGF returns the opcode group field.
func (o Opcode) OGF() uint16 { return uint16(o) >> 10 }

// OCF returns the opcode command field.
func (o Opcode) OCF() uint16 { return uint16(o) & 0x3FF }

// Link control (OGF 0x01), controller & baseband (OGF 0x03) and
// informational (OGF 0x04) commands used by the simulator.
const (
	OpInquiry                       Opcode = 0x0401
	OpInquiryCancel                 Opcode = 0x0402
	OpCreateConnection              Opcode = 0x0405
	OpDisconnect                    Opcode = 0x0406
	OpAcceptConnectionRequest       Opcode = 0x0409
	OpRejectConnectionRequest       Opcode = 0x040A
	OpLinkKeyRequestReply           Opcode = 0x040B
	OpLinkKeyRequestNegativeReply   Opcode = 0x040C
	OpPINCodeRequestReply           Opcode = 0x040D
	OpPINCodeRequestNegativeReply   Opcode = 0x040E
	OpAuthenticationRequested       Opcode = 0x0411
	OpSetConnectionEncryption       Opcode = 0x0413
	OpRemoteNameRequest             Opcode = 0x0419
	OpIOCapabilityRequestReply      Opcode = 0x042B
	OpUserConfirmationRequestReply  Opcode = 0x042C
	OpUserConfirmationRequestNegRep Opcode = 0x042D
	OpUserPasskeyRequestReply       Opcode = 0x042E
	OpUserPasskeyRequestNegReply    Opcode = 0x042F
	OpRemoteOOBDataRequestReply     Opcode = 0x0430
	OpRemoteOOBDataRequestNegReply  Opcode = 0x0433

	OpReset                  Opcode = 0x0C03
	OpWriteLocalName         Opcode = 0x0C13
	OpWriteScanEnable        Opcode = 0x0C1A
	OpWriteClassOfDevice     Opcode = 0x0C24
	OpWriteSimplePairingMode Opcode = 0x0C56

	OpReadLocalOOBData Opcode = 0x0C57

	OpReadBDADDR Opcode = 0x1009
)

func (o Opcode) String() string {
	switch o {
	case OpInquiry:
		return "HCI_Inquiry"
	case OpInquiryCancel:
		return "HCI_Inquiry_Cancel"
	case OpCreateConnection:
		return "HCI_Create_Connection"
	case OpDisconnect:
		return "HCI_Disconnect"
	case OpAcceptConnectionRequest:
		return "HCI_Accept_Connection_Request"
	case OpRejectConnectionRequest:
		return "HCI_Reject_Connection_Request"
	case OpLinkKeyRequestReply:
		return "HCI_Link_Key_Request_Reply"
	case OpLinkKeyRequestNegativeReply:
		return "HCI_Link_Key_Request_Negative_Reply"
	case OpPINCodeRequestReply:
		return "HCI_PIN_Code_Request_Reply"
	case OpPINCodeRequestNegativeReply:
		return "HCI_PIN_Code_Request_Negative_Reply"
	case OpAuthenticationRequested:
		return "HCI_Authentication_Requested"
	case OpSetConnectionEncryption:
		return "HCI_Set_Connection_Encryption"
	case OpRemoteNameRequest:
		return "HCI_Remote_Name_Request"
	case OpIOCapabilityRequestReply:
		return "HCI_IO_Capability_Request_Reply"
	case OpUserConfirmationRequestReply:
		return "HCI_User_Confirmation_Request_Reply"
	case OpUserConfirmationRequestNegRep:
		return "HCI_User_Confirmation_Request_Negative_Reply"
	case OpUserPasskeyRequestReply:
		return "HCI_User_Passkey_Request_Reply"
	case OpUserPasskeyRequestNegReply:
		return "HCI_User_Passkey_Request_Negative_Reply"
	case OpRemoteOOBDataRequestReply:
		return "HCI_Remote_OOB_Data_Request_Reply"
	case OpRemoteOOBDataRequestNegReply:
		return "HCI_Remote_OOB_Data_Request_Negative_Reply"
	case OpReset:
		return "HCI_Reset"
	case OpWriteLocalName:
		return "HCI_Write_Local_Name"
	case OpWriteScanEnable:
		return "HCI_Write_Scan_Enable"
	case OpWriteClassOfDevice:
		return "HCI_Write_Class_Of_Device"
	case OpWriteSimplePairingMode:
		return "HCI_Write_Simple_Pairing_Mode"
	case OpReadLocalOOBData:
		return "HCI_Read_Local_OOB_Data"
	case OpReadBDADDR:
		return "HCI_Read_BD_ADDR"
	default:
		return fmt.Sprintf("HCI_Opcode(0x%04x)", uint16(o))
	}
}

// EventCode identifies an HCI event.
type EventCode uint8

// Events used by the simulator.
const (
	EvInquiryComplete           EventCode = 0x01
	EvInquiryResult             EventCode = 0x02
	EvConnectionComplete        EventCode = 0x03
	EvConnectionRequest         EventCode = 0x04
	EvDisconnectionComplete     EventCode = 0x05
	EvAuthenticationComplete    EventCode = 0x06
	EvRemoteNameRequestComplete EventCode = 0x07
	EvEncryptionChange          EventCode = 0x08
	EvCommandComplete           EventCode = 0x0E
	EvCommandStatus             EventCode = 0x0F
	EvPINCodeRequest            EventCode = 0x16
	EvLinkKeyRequest            EventCode = 0x17
	EvLinkKeyNotification       EventCode = 0x18
	EvIOCapabilityRequest       EventCode = 0x31
	EvIOCapabilityResponse      EventCode = 0x32
	EvUserConfirmationRequest   EventCode = 0x33
	EvUserPasskeyRequest        EventCode = 0x34
	EvRemoteOOBDataRequest      EventCode = 0x35
	EvSimplePairingComplete     EventCode = 0x36
	EvUserPasskeyNotification   EventCode = 0x3B
)

func (e EventCode) String() string {
	switch e {
	case EvInquiryComplete:
		return "HCI_Inquiry_Complete"
	case EvInquiryResult:
		return "HCI_Inquiry_Result"
	case EvConnectionComplete:
		return "HCI_Connection_Complete"
	case EvConnectionRequest:
		return "HCI_Connection_Request"
	case EvDisconnectionComplete:
		return "HCI_Disconnection_Complete"
	case EvAuthenticationComplete:
		return "HCI_Authentication_Complete"
	case EvRemoteNameRequestComplete:
		return "HCI_Remote_Name_Request_Complete"
	case EvEncryptionChange:
		return "HCI_Encryption_Change"
	case EvCommandComplete:
		return "HCI_Command_Complete"
	case EvCommandStatus:
		return "HCI_Command_Status"
	case EvPINCodeRequest:
		return "HCI_PIN_Code_Request"
	case EvLinkKeyRequest:
		return "HCI_Link_Key_Request"
	case EvLinkKeyNotification:
		return "HCI_Link_Key_Notification"
	case EvIOCapabilityRequest:
		return "HCI_IO_Capability_Request"
	case EvIOCapabilityResponse:
		return "HCI_IO_Capability_Response"
	case EvUserConfirmationRequest:
		return "HCI_User_Confirmation_Request"
	case EvUserPasskeyRequest:
		return "HCI_User_Passkey_Request"
	case EvRemoteOOBDataRequest:
		return "HCI_Remote_OOB_Data_Request"
	case EvUserPasskeyNotification:
		return "HCI_User_Passkey_Notification"
	case EvSimplePairingComplete:
		return "HCI_Simple_Pairing_Complete"
	default:
		return fmt.Sprintf("HCI_Event(0x%02x)", uint8(e))
	}
}

// Status is an HCI error code (Core spec Vol 1 Part F).
type Status uint8

// Status codes used by the simulator.
const (
	StatusSuccess                 Status = 0x00
	StatusUnknownConnectionID     Status = 0x02
	StatusPageTimeout             Status = 0x04
	StatusAuthenticationFailure   Status = 0x05
	StatusPINOrKeyMissing         Status = 0x06
	StatusConnectionTimeout       Status = 0x08
	StatusConnectionAcceptTimeout Status = 0x10
	StatusRemoteUserTerminated    Status = 0x13
	StatusConnTerminatedLocally   Status = 0x16
	StatusPairingNotAllowed       Status = 0x18
	StatusLMPResponseTimeout      Status = 0x22
	StatusConnectionAlreadyExists Status = 0x0B
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "Success"
	case StatusUnknownConnectionID:
		return "Unknown Connection Identifier"
	case StatusPageTimeout:
		return "Page Timeout"
	case StatusAuthenticationFailure:
		return "Authentication Failure"
	case StatusPINOrKeyMissing:
		return "PIN or Key Missing"
	case StatusConnectionTimeout:
		return "Connection Timeout"
	case StatusConnectionAcceptTimeout:
		return "Connection Accept Timeout"
	case StatusRemoteUserTerminated:
		return "Remote User Terminated Connection"
	case StatusConnTerminatedLocally:
		return "Connection Terminated By Local Host"
	case StatusPairingNotAllowed:
		return "Pairing Not Allowed"
	case StatusLMPResponseTimeout:
		return "LMP Response Timeout"
	case StatusConnectionAlreadyExists:
		return "Connection Already Exists"
	default:
		return fmt.Sprintf("Status(0x%02x)", uint8(s))
	}
}

// Err converts a non-success status to an error; success yields nil.
func (s Status) Err() error {
	if s == StatusSuccess {
		return nil
	}
	return fmt.Errorf("hci: %s", s)
}
