package hci

import (
	"errors"
	"fmt"
)

// PacketType is the H4 packet indicator octet.
type PacketType uint8

// H4 packet indicators.
const (
	PTCommand PacketType = 0x01
	PTACLData PacketType = 0x02
	PTSCOData PacketType = 0x03
	PTEvent   PacketType = 0x04
)

func (t PacketType) String() string {
	switch t {
	case PTCommand:
		return "Command"
	case PTACLData:
		return "ACL Data"
	case PTSCOData:
		return "SCO Data"
	case PTEvent:
		return "Event"
	default:
		return fmt.Sprintf("PacketType(0x%02x)", uint8(t))
	}
}

// Direction describes which way a packet crosses the HCI.
type Direction uint8

// Packet directions relative to the host.
const (
	DirHostToController Direction = iota // commands, outbound ACL
	DirControllerToHost                  // events, inbound ACL
)

func (d Direction) String() string {
	if d == DirHostToController {
		return "host->controller"
	}
	return "controller->host"
}

// Packet is a complete H4 packet: the indicator octet and the packet body
// (opcode/length/params for commands, event/length/params for events,
// handle/length/data for ACL).
type Packet struct {
	Dir  Direction
	PT   PacketType
	Body []byte
}

// Codec errors.
var (
	ErrTruncated     = errors.New("hci: truncated packet")
	ErrBadPacketType = errors.New("hci: unknown packet type")
	ErrBadLength     = errors.New("hci: length field mismatch")
	ErrUnknownOpcode = errors.New("hci: unknown opcode")
	ErrUnknownEvent  = errors.New("hci: unknown event code")
)

// Wire returns the full H4 encoding: indicator octet followed by the body.
func (p Packet) Wire() []byte {
	out := make([]byte, 1+len(p.Body))
	out[0] = byte(p.PT)
	copy(out[1:], p.Body)
	return out
}

// ParseWire decodes an H4 byte string into a Packet, validating the
// length field of command/event bodies.
func ParseWire(dir Direction, raw []byte) (Packet, error) {
	if len(raw) < 1 {
		return Packet{}, ErrTruncated
	}
	p := Packet{Dir: dir, PT: PacketType(raw[0]), Body: append([]byte(nil), raw[1:]...)}
	switch p.PT {
	case PTCommand:
		if len(p.Body) < 3 {
			return Packet{}, fmt.Errorf("%w: command header", ErrTruncated)
		}
		if int(p.Body[2]) != len(p.Body)-3 {
			return Packet{}, fmt.Errorf("%w: command declares %d params, has %d", ErrBadLength, p.Body[2], len(p.Body)-3)
		}
	case PTEvent:
		if len(p.Body) < 2 {
			return Packet{}, fmt.Errorf("%w: event header", ErrTruncated)
		}
		if int(p.Body[1]) != len(p.Body)-2 {
			return Packet{}, fmt.Errorf("%w: event declares %d params, has %d", ErrBadLength, p.Body[1], len(p.Body)-2)
		}
	case PTACLData:
		if len(p.Body) < 4 {
			return Packet{}, fmt.Errorf("%w: ACL header", ErrTruncated)
		}
		declared := int(p.Body[2]) | int(p.Body[3])<<8
		if declared != len(p.Body)-4 {
			return Packet{}, fmt.Errorf("%w: ACL declares %d bytes, has %d", ErrBadLength, declared, len(p.Body)-4)
		}
	case PTSCOData:
		if len(p.Body) < 3 {
			return Packet{}, fmt.Errorf("%w: SCO header", ErrTruncated)
		}
	default:
		return Packet{}, fmt.Errorf("%w: 0x%02x", ErrBadPacketType, raw[0])
	}
	return p, nil
}

// CommandOpcode returns the opcode of a command packet.
func (p Packet) CommandOpcode() (Opcode, bool) {
	if p.PT != PTCommand || len(p.Body) < 2 {
		return 0, false
	}
	return Opcode(uint16(p.Body[0]) | uint16(p.Body[1])<<8), true
}

// EventCode returns the event code of an event packet.
func (p Packet) EventCode() (EventCode, bool) {
	if p.PT != PTEvent || len(p.Body) < 1 {
		return 0, false
	}
	return EventCode(p.Body[0]), true
}
