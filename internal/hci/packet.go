package hci

import (
	"errors"
	"fmt"
)

// PacketType is the H4 packet indicator octet.
type PacketType uint8

// H4 packet indicators.
const (
	PTCommand PacketType = 0x01
	PTACLData PacketType = 0x02
	PTSCOData PacketType = 0x03
	PTEvent   PacketType = 0x04
)

func (t PacketType) String() string {
	switch t {
	case PTCommand:
		return "Command"
	case PTACLData:
		return "ACL Data"
	case PTSCOData:
		return "SCO Data"
	case PTEvent:
		return "Event"
	default:
		return fmt.Sprintf("PacketType(0x%02x)", uint8(t))
	}
}

// Direction describes which way a packet crosses the HCI.
type Direction uint8

// Packet directions relative to the host.
const (
	DirHostToController Direction = iota // commands, outbound ACL
	DirControllerToHost                  // events, inbound ACL
)

func (d Direction) String() string {
	if d == DirHostToController {
		return "host->controller"
	}
	return "controller->host"
}

// Packet is a complete H4 packet: the indicator octet and the packet body
// (opcode/length/params for commands, event/length/params for events,
// handle/length/data for ACL).
type Packet struct {
	Dir  Direction
	PT   PacketType
	Body []byte
}

// Codec errors.
var (
	ErrTruncated     = errors.New("hci: truncated packet")
	ErrBadPacketType = errors.New("hci: unknown packet type")
	ErrBadLength     = errors.New("hci: length field mismatch")
	ErrUnknownOpcode = errors.New("hci: unknown opcode")
	ErrUnknownEvent  = errors.New("hci: unknown event code")
)

// Wire returns the full H4 encoding: indicator octet followed by the body.
func (p Packet) Wire() []byte {
	out := make([]byte, 1+len(p.Body))
	out[0] = byte(p.PT)
	copy(out[1:], p.Body)
	return out
}

// validateBody checks the length framing of an H4 packet body for pt.
func validateBody(pt PacketType, body []byte) error {
	switch pt {
	case PTCommand:
		if len(body) < 3 {
			return fmt.Errorf("%w: command header", ErrTruncated)
		}
		if int(body[2]) != len(body)-3 {
			return fmt.Errorf("%w: command declares %d params, has %d", ErrBadLength, body[2], len(body)-3)
		}
	case PTEvent:
		if len(body) < 2 {
			return fmt.Errorf("%w: event header", ErrTruncated)
		}
		if int(body[1]) != len(body)-2 {
			return fmt.Errorf("%w: event declares %d params, has %d", ErrBadLength, body[1], len(body)-2)
		}
	case PTACLData:
		if len(body) < 4 {
			return fmt.Errorf("%w: ACL header", ErrTruncated)
		}
		declared := int(body[2]) | int(body[3])<<8
		if declared != len(body)-4 {
			return fmt.Errorf("%w: ACL declares %d bytes, has %d", ErrBadLength, declared, len(body)-4)
		}
	case PTSCOData:
		if len(body) < 3 {
			return fmt.Errorf("%w: SCO header", ErrTruncated)
		}
	default:
		return fmt.Errorf("%w: 0x%02x", ErrBadPacketType, uint8(pt))
	}
	return nil
}

// ParseWire decodes an H4 byte string into a Packet, validating the
// length field of command/event bodies. The returned Body is a copy and
// may be retained freely.
func ParseWire(dir Direction, raw []byte) (Packet, error) {
	p, err := ParseWireBorrow(dir, raw)
	if err != nil {
		return Packet{}, err
	}
	p.Body = append([]byte(nil), p.Body...)
	return p, nil
}

// ParseWireBorrow is ParseWire without the defensive copy: the returned
// Packet's Body aliases raw[1:] and is valid only as long as raw is.
// ParseCommand and ParseEvent copy every field they extract, so typed
// parse results never alias the body and survive buffer reuse — the
// contract the streaming capture pipeline relies on.
func ParseWireBorrow(dir Direction, raw []byte) (Packet, error) {
	if len(raw) < 1 {
		return Packet{}, ErrTruncated
	}
	p := Packet{Dir: dir, PT: PacketType(raw[0]), Body: raw[1:]}
	if err := validateBody(p.PT, p.Body); err != nil {
		return Packet{}, err
	}
	return p, nil
}

// PeekPacketType classifies a raw H4 packet by its indicator octet
// without parsing anything, reporting false for an empty buffer or an
// unknown type. It is the cheapest possible classifier — one byte
// compare — used by the live-ingestion metrics to count commands,
// events, and ACL/SCO data per stream without touching the decode path.
func PeekPacketType(raw []byte) (PacketType, bool) {
	if len(raw) < 1 {
		return 0, false
	}
	pt := PacketType(raw[0])
	switch pt {
	case PTCommand, PTACLData, PTSCOData, PTEvent:
		return pt, true
	}
	return 0, false
}

// PeekCommandOpcode reads the opcode of a raw H4 command packet without
// validating or parsing the body. It reports false for any other packet
// type or for inputs too short to carry an opcode. Classifier for the
// zero-copy fast path: callers peek first and full-parse only the packet
// kinds they consume.
func PeekCommandOpcode(raw []byte) (Opcode, bool) {
	if len(raw) < 3 || PacketType(raw[0]) != PTCommand {
		return 0, false
	}
	return Opcode(uint16(raw[1]) | uint16(raw[2])<<8), true
}

// PeekEventCode reads the event code of a raw H4 event packet without
// validating or parsing the body, the event-side mirror of
// PeekCommandOpcode.
func PeekEventCode(raw []byte) (EventCode, bool) {
	if len(raw) < 2 || PacketType(raw[0]) != PTEvent {
		return 0, false
	}
	return EventCode(raw[1]), true
}

// CommandOpcode returns the opcode of a command packet.
func (p Packet) CommandOpcode() (Opcode, bool) {
	if p.PT != PTCommand || len(p.Body) < 2 {
		return 0, false
	}
	return Opcode(uint16(p.Body[0]) | uint16(p.Body[1])<<8), true
}

// EventCode returns the event code of an event packet.
func (p Packet) EventCode() (EventCode, bool) {
	if p.PT != PTEvent || len(p.Body) < 1 {
		return 0, false
	}
	return EventCode(p.Body[0]), true
}
