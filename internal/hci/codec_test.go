package hci

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/bt"
)

// allCommands returns one populated instance of every command type.
func allCommands() []Command {
	addr := bt.MustBDADDR("00:1a:7d:da:71:0a")
	key := bt.MustLinkKey("c4f16e949f04ee9c0fd6b1330289c324")
	return []Command{
		&Inquiry{LAP: GIAC, InquiryLength: 8, NumResponses: 0},
		&InquiryCancel{},
		&CreateConnection{Addr: addr, PacketTypes: 0xCC18, PageScanRepetitionMode: 1, ClockOffset: 0x1234, AllowRoleSwitch: 1},
		&Disconnect{Handle: 0x0006, Reason: StatusRemoteUserTerminated},
		&AcceptConnectionRequest{Addr: addr, Role: 1},
		&RejectConnectionRequest{Addr: addr, Reason: StatusConnTerminatedLocally},
		&LinkKeyRequestReply{Addr: addr, Key: key},
		&LinkKeyRequestNegativeReply{Addr: addr},
		&PINCodeRequestReply{Addr: addr, PIN: []byte("0000")},
		&PINCodeRequestNegativeReply{Addr: addr},
		&AuthenticationRequested{Handle: 0x0003},
		&SetConnectionEncryption{Handle: 0x0003, Enable: true},
		&RemoteNameRequest{Addr: addr, PageScanRepetitionMode: 2, ClockOffset: 7},
		&IOCapabilityRequestReply{Addr: addr, Capability: bt.NoInputNoOutput, OOBDataPresent: false, AuthRequirements: 0x03},
		&UserConfirmationRequestReply{Addr: addr},
		&UserConfirmationRequestNegativeReply{Addr: addr},
		&UserPasskeyRequestReply{Addr: addr, Passkey: 847912},
		&UserPasskeyRequestNegativeReply{Addr: addr},
		&RemoteOOBDataRequestReply{Addr: addr, C: [16]byte{1, 2, 3}, R: [16]byte{4, 5, 6}},
		&RemoteOOBDataRequestNegativeReply{Addr: addr},
		&ReadLocalOOBData{},
		&Reset{},
		&WriteLocalName{Name: "VELVET"},
		&WriteScanEnable{ScanEnable: ScanInquiryPage},
		&WriteClassOfDevice{COD: bt.CODHandsFree},
		&WriteSimplePairingMode{Enabled: true},
		&ReadBDADDR{},
	}
}

// allEvents returns one populated instance of every event type.
func allEvents() []Event {
	addr := bt.MustBDADDR("48:90:51:1e:7f:2c")
	key := bt.MustLinkKey("71a70981f30d6af9e20adee8aafe3264")
	return []Event{
		&InquiryComplete{Status: StatusSuccess},
		&InquiryResult{Responses: []InquiryResponse{
			{Addr: addr, PageScanRepetitionMode: 1, COD: bt.CODMobilePhone, ClockOffset: 0x4321},
			{Addr: bt.MustBDADDR("11:22:33:44:55:66"), COD: bt.CODHeadset},
		}},
		&ConnectionComplete{Status: StatusSuccess, Handle: 0x0006, Addr: addr, LinkType: LinkTypeACL, EncryptionEnabled: false},
		&ConnectionRequest{Addr: addr, COD: bt.CODHandsFree, LinkType: LinkTypeACL},
		&DisconnectionComplete{Status: StatusSuccess, Handle: 0x0006, Reason: StatusLMPResponseTimeout},
		&AuthenticationComplete{Status: StatusAuthenticationFailure, Handle: 0x0003},
		&RemoteNameRequestComplete{Status: StatusSuccess, Addr: addr, Name: "Galaxy s21"},
		&EncryptionChange{Status: StatusSuccess, Handle: 0x0003, Enabled: true},
		&CommandComplete{NumPackets: 1, CommandOpcode: OpReset, ReturnParams: []byte{0x00}},
		&CommandStatus{Status: StatusSuccess, NumPackets: 1, CommandOpcode: OpCreateConnection},
		&PINCodeRequest{Addr: addr},
		&LinkKeyRequest{Addr: addr},
		&LinkKeyNotification{Addr: addr, Key: key, KeyType: bt.KeyTypeUnauthenticatedP256},
		&IOCapabilityRequest{Addr: addr},
		&IOCapabilityResponse{Addr: addr, Capability: bt.DisplayYesNo, OOBDataPresent: true, AuthRequirements: 1},
		&UserConfirmationRequest{Addr: addr, NumericValue: 847912},
		&UserPasskeyRequest{Addr: addr},
		&UserPasskeyNotification{Addr: addr, Passkey: 428913},
		&RemoteOOBDataRequest{Addr: addr},
		&SimplePairingComplete{Status: StatusSuccess, Addr: addr},
	}
}

func TestCommandRoundTrip(t *testing.T) {
	for _, cmd := range allCommands() {
		pkt := EncodeCommand(cmd)
		if pkt.PT != PTCommand || pkt.Dir != DirHostToController {
			t.Fatalf("%T: bad packet framing", cmd)
		}
		reparsed, err := ParseWire(pkt.Dir, pkt.Wire())
		if err != nil {
			t.Fatalf("%T: ParseWire: %v", cmd, err)
		}
		got, err := ParseCommand(reparsed)
		if err != nil {
			t.Fatalf("%T: ParseCommand: %v", cmd, err)
		}
		// Round trip through the codec must preserve the value.
		b1 := EncodeCommand(cmd).Wire()
		b2 := EncodeCommand(got).Wire()
		if string(b1) != string(b2) {
			t.Fatalf("%T: round trip changed bytes\n  %x\n  %x", cmd, b1, b2)
		}
	}
}

func TestEventRoundTrip(t *testing.T) {
	for _, evt := range allEvents() {
		pkt := EncodeEvent(evt)
		if pkt.PT != PTEvent || pkt.Dir != DirControllerToHost {
			t.Fatalf("%T: bad packet framing", evt)
		}
		reparsed, err := ParseWire(pkt.Dir, pkt.Wire())
		if err != nil {
			t.Fatalf("%T: ParseWire: %v", evt, err)
		}
		got, err := ParseEvent(reparsed)
		if err != nil {
			t.Fatalf("%T: ParseEvent: %v", evt, err)
		}
		b1 := EncodeEvent(evt).Wire()
		b2 := EncodeEvent(got).Wire()
		if string(b1) != string(b2) {
			t.Fatalf("%T: round trip changed bytes\n  %x\n  %x", evt, b1, b2)
		}
	}
}

func TestLinkKeyReplyWirePrefix(t *testing.T) {
	// The paper's USB extraction keys off the exact wire prefix
	// 01 0b 04 16 (H4 command, opcode 0x040B little-endian, length 22).
	cmd := &LinkKeyRequestReply{
		Addr: bt.MustBDADDR("00:1a:7d:da:71:0a"),
		Key:  bt.MustLinkKey("c4f16e949f04ee9c0fd6b1330289c324"),
	}
	wire := EncodeCommand(cmd).Wire()
	if len(wire) != 4+22 {
		t.Fatalf("wire length %d, want 26", len(wire))
	}
	if wire[0] != 0x01 || wire[1] != 0x0b || wire[2] != 0x04 || wire[3] != 0x16 {
		t.Fatalf("prefix %x, want 010b0416", wire[:4])
	}
	// Address in little-endian follows the header.
	if wire[4] != 0x0a || wire[5] != 0x71 || wire[6] != 0xda {
		t.Fatalf("address bytes %x", wire[4:10])
	}
	// Key is carried least-significant byte first: last wire byte is the
	// key's first (big-endian) byte.
	if wire[25] != 0xc4 {
		t.Fatalf("key wire order wrong: last byte %x, want c4", wire[25])
	}
}

func TestParseWireRejectsCorruption(t *testing.T) {
	good := EncodeCommand(&Reset{}).Wire()
	if _, err := ParseWire(DirHostToController, nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty: %v", err)
	}
	if _, err := ParseWire(DirHostToController, []byte{0x09, 1, 2, 3}); !errors.Is(err, ErrBadPacketType) {
		t.Errorf("bad type: %v", err)
	}
	// Length mismatch.
	bad := append([]byte(nil), good...)
	bad[3] = 7 // claims 7 params, has 0
	if _, err := ParseWire(DirHostToController, bad); !errors.Is(err, ErrBadLength) {
		t.Errorf("bad length: %v", err)
	}
	// Truncated command header.
	if _, err := ParseWire(DirHostToController, []byte{0x01, 0x03}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: %v", err)
	}
	// Truncated event header.
	if _, err := ParseWire(DirControllerToHost, []byte{0x04}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short event: %v", err)
	}
}

func TestParseUnknownOpcodeAndEvent(t *testing.T) {
	pkt := Packet{Dir: DirHostToController, PT: PTCommand, Body: []byte{0xFF, 0xFF, 0x00}}
	if _, err := ParseCommand(pkt); !errors.Is(err, ErrUnknownOpcode) {
		t.Errorf("unknown opcode: %v", err)
	}
	evt := Packet{Dir: DirControllerToHost, PT: PTEvent, Body: []byte{0xFE, 0x00}}
	if _, err := ParseEvent(evt); !errors.Is(err, ErrUnknownEvent) {
		t.Errorf("unknown event: %v", err)
	}
}

func TestParseShortParams(t *testing.T) {
	// A Link_Key_Request_Reply with too few parameter bytes must fail
	// cleanly, not panic.
	body := []byte{0x0b, 0x04, 0x03, 1, 2, 3}
	pkt := Packet{Dir: DirHostToController, PT: PTCommand, Body: body}
	if _, err := ParseCommand(pkt); err == nil {
		t.Fatal("short params accepted")
	}
}

func TestACLRoundTrip(t *testing.T) {
	f := func(handle uint16, data []byte) bool {
		h := bt.ConnHandle(handle & 0x0FFF)
		pkt := EncodeACL(DirHostToController, h, data)
		gotH, gotData, ok := ParseACL(pkt)
		if !ok || gotH != h {
			return false
		}
		if len(gotData) != len(data) {
			return false
		}
		for i := range data {
			if gotData[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOpcodeOGFOCF(t *testing.T) {
	if OpCreateConnection.OGF() != 0x01 || OpCreateConnection.OCF() != 0x005 {
		t.Errorf("CreateConnection OGF/OCF = %x/%x", OpCreateConnection.OGF(), OpCreateConnection.OCF())
	}
	if OpReset.OGF() != 0x03 {
		t.Errorf("Reset OGF = %x", OpReset.OGF())
	}
	if OpcodeOf(0x01, 0x005) != OpCreateConnection {
		t.Error("OpcodeOf mismatch")
	}
}

func TestStatusErr(t *testing.T) {
	if StatusSuccess.Err() != nil {
		t.Error("success must map to nil")
	}
	if StatusPageTimeout.Err() == nil {
		t.Error("failure must map to error")
	}
}

func TestScanEnableBits(t *testing.T) {
	if !ScanInquiryPage.InquiryScan() || !ScanInquiryPage.PageScan() {
		t.Error("0x03 enables both scans")
	}
	if ScanPageOnly.InquiryScan() || !ScanPageOnly.PageScan() {
		t.Error("0x02 is page only")
	}
	if ScanOff.InquiryScan() || ScanOff.PageScan() {
		t.Error("0x00 disables both")
	}
}

func TestNameStrings(t *testing.T) {
	if OpLinkKeyRequestReply.String() != "HCI_Link_Key_Request_Reply" {
		t.Errorf("opcode name: %s", OpLinkKeyRequestReply)
	}
	if EvLinkKeyNotification.String() != "HCI_Link_Key_Notification" {
		t.Errorf("event name: %s", EvLinkKeyNotification)
	}
	if StatusLMPResponseTimeout.String() != "LMP Response Timeout" {
		t.Errorf("status name: %s", StatusLMPResponseTimeout)
	}
	if Opcode(0x3FFF).String() == "" || EventCode(0x77).String() == "" {
		t.Error("unknown ids must render")
	}
}

func TestEveryOpcodeAndEventHasAName(t *testing.T) {
	for _, cmd := range allCommands() {
		if name := cmd.Opcode().String(); name == "" || name[0] != 'H' {
			t.Errorf("%T opcode name %q", cmd, name)
		}
	}
	for _, evt := range allEvents() {
		if name := evt.Code().String(); name == "" || name[0] != 'H' {
			t.Errorf("%T event name %q", evt, name)
		}
	}
	for _, st := range []Status{StatusSuccess, StatusUnknownConnectionID, StatusPageTimeout,
		StatusAuthenticationFailure, StatusPINOrKeyMissing, StatusConnectionTimeout,
		StatusConnectionAcceptTimeout, StatusRemoteUserTerminated, StatusConnTerminatedLocally,
		StatusPairingNotAllowed, StatusLMPResponseTimeout, StatusConnectionAlreadyExists, Status(0xEE)} {
		if st.String() == "" {
			t.Errorf("status %#x renders empty", uint8(st))
		}
	}
	if PTCommand.String() == "" || PTEvent.String() == "" || PTACLData.String() == "" ||
		PTSCOData.String() == "" || PacketType(9).String() == "" {
		t.Error("packet type names")
	}
	if DirHostToController.String() == DirControllerToHost.String() {
		t.Error("direction names must differ")
	}
}

func TestPeekPacketType(t *testing.T) {
	for _, cmd := range allCommands() {
		if pt, ok := PeekPacketType(EncodeCommand(cmd).Wire()); !ok || pt != PTCommand {
			t.Errorf("%T: peek %v %v", cmd, pt, ok)
		}
	}
	for _, evt := range allEvents() {
		if pt, ok := PeekPacketType(EncodeEvent(evt).Wire()); !ok || pt != PTEvent {
			t.Errorf("%T: peek %v %v", evt, pt, ok)
		}
	}
	if pt, ok := PeekPacketType(EncodeACL(DirHostToController, 3, []byte{1}).Wire()); !ok || pt != PTACLData {
		t.Errorf("ACL: peek %v %v", pt, ok)
	}
	if _, ok := PeekPacketType(nil); ok {
		t.Error("nil buffer peeked")
	}
	if _, ok := PeekPacketType([]byte{0x00}); ok {
		t.Error("unknown indicator peeked")
	}
}
