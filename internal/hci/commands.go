package hci

import (
	"fmt"

	"repro/internal/bt"
)

// Command is a typed HCI command. Marshalling produces the parameter bytes
// only; EncodeCommand adds the opcode/length header and H4 indicator.
type Command interface {
	Opcode() Opcode
	MarshalParams() []byte
}

// EncodeCommand builds a complete H4 command packet.
func EncodeCommand(c Command) Packet {
	params := c.MarshalParams()
	body := make([]byte, 3+len(params))
	op := uint16(c.Opcode())
	body[0] = byte(op)
	body[1] = byte(op >> 8)
	body[2] = byte(len(params))
	copy(body[3:], params)
	return Packet{Dir: DirHostToController, PT: PTCommand, Body: body}
}

// ParseCommand decodes a command packet into its typed form.
func ParseCommand(p Packet) (Command, error) {
	op, ok := p.CommandOpcode()
	if !ok {
		return nil, fmt.Errorf("%w: not a command packet", ErrTruncated)
	}
	params := p.Body[3:]
	r := reader{buf: params}
	var c Command
	switch op {
	case OpInquiry:
		v := &Inquiry{}
		v.LAP = r.u24()
		v.InquiryLength = r.u8()
		v.NumResponses = r.u8()
		c = v
	case OpInquiryCancel:
		c = &InquiryCancel{}
	case OpCreateConnection:
		v := &CreateConnection{}
		v.Addr = r.addr()
		v.PacketTypes = r.u16()
		v.PageScanRepetitionMode = r.u8()
		r.u8() // reserved
		v.ClockOffset = r.u16()
		v.AllowRoleSwitch = r.u8()
		c = v
	case OpDisconnect:
		v := &Disconnect{}
		v.Handle = bt.ConnHandle(r.u16())
		v.Reason = Status(r.u8())
		c = v
	case OpAcceptConnectionRequest:
		v := &AcceptConnectionRequest{}
		v.Addr = r.addr()
		v.Role = r.u8()
		c = v
	case OpRejectConnectionRequest:
		v := &RejectConnectionRequest{}
		v.Addr = r.addr()
		v.Reason = Status(r.u8())
		c = v
	case OpLinkKeyRequestReply:
		v := &LinkKeyRequestReply{}
		v.Addr = r.addr()
		v.Key = r.key()
		c = v
	case OpLinkKeyRequestNegativeReply:
		v := &LinkKeyRequestNegativeReply{}
		v.Addr = r.addr()
		c = v
	case OpPINCodeRequestReply:
		v := &PINCodeRequestReply{}
		v.Addr = r.addr()
		n := r.u8()
		pin := r.bytes(16)
		if int(n) <= len(pin) {
			v.PIN = pin[:n]
		}
		c = v
	case OpPINCodeRequestNegativeReply:
		v := &PINCodeRequestNegativeReply{}
		v.Addr = r.addr()
		c = v
	case OpAuthenticationRequested:
		v := &AuthenticationRequested{}
		v.Handle = bt.ConnHandle(r.u16())
		c = v
	case OpSetConnectionEncryption:
		v := &SetConnectionEncryption{}
		v.Handle = bt.ConnHandle(r.u16())
		v.Enable = r.u8() != 0
		c = v
	case OpRemoteNameRequest:
		v := &RemoteNameRequest{}
		v.Addr = r.addr()
		v.PageScanRepetitionMode = r.u8()
		r.u8()
		v.ClockOffset = r.u16()
		c = v
	case OpIOCapabilityRequestReply:
		v := &IOCapabilityRequestReply{}
		v.Addr = r.addr()
		v.Capability = bt.IOCapability(r.u8())
		v.OOBDataPresent = r.u8() != 0
		v.AuthRequirements = r.u8()
		c = v
	case OpUserConfirmationRequestReply:
		v := &UserConfirmationRequestReply{}
		v.Addr = r.addr()
		c = v
	case OpUserConfirmationRequestNegRep:
		v := &UserConfirmationRequestNegativeReply{}
		v.Addr = r.addr()
		c = v
	case OpUserPasskeyRequestReply:
		v := &UserPasskeyRequestReply{}
		v.Addr = r.addr()
		v.Passkey = r.u32()
		c = v
	case OpUserPasskeyRequestNegReply:
		v := &UserPasskeyRequestNegativeReply{}
		v.Addr = r.addr()
		c = v
	case OpRemoteOOBDataRequestReply:
		v := &RemoteOOBDataRequestReply{}
		v.Addr = r.addr()
		copy(v.C[:], r.bytes(16))
		copy(v.R[:], r.bytes(16))
		c = v
	case OpRemoteOOBDataRequestNegReply:
		v := &RemoteOOBDataRequestNegativeReply{}
		v.Addr = r.addr()
		c = v
	case OpReadLocalOOBData:
		c = &ReadLocalOOBData{}
	case OpReset:
		c = &Reset{}
	case OpWriteLocalName:
		v := &WriteLocalName{}
		raw := r.bytes(len(params))
		for i, b := range raw {
			if b == 0 {
				raw = raw[:i]
				break
			}
		}
		v.Name = string(raw)
		c = v
	case OpWriteScanEnable:
		v := &WriteScanEnable{}
		v.ScanEnable = ScanEnable(r.u8())
		c = v
	case OpWriteClassOfDevice:
		v := &WriteClassOfDevice{}
		var cod [3]byte
		copy(cod[:], r.bytes(3))
		v.COD = bt.CODFromBytes(cod)
		c = v
	case OpWriteSimplePairingMode:
		v := &WriteSimplePairingMode{}
		v.Enabled = r.u8() != 0
		c = v
	case OpReadBDADDR:
		c = &ReadBDADDR{}
	default:
		return nil, fmt.Errorf("%w: 0x%04x", ErrUnknownOpcode, uint16(op))
	}
	if r.err != nil {
		return nil, fmt.Errorf("hci: parsing %s: %w", op, r.err)
	}
	return c, nil
}

// ScanEnable is the Write_Scan_Enable parameter.
type ScanEnable uint8

// Scan enable bit combinations.
const (
	ScanOff         ScanEnable = 0x00
	ScanInquiryOnly ScanEnable = 0x01
	ScanPageOnly    ScanEnable = 0x02
	ScanInquiryPage ScanEnable = 0x03
)

// InquiryScan reports whether inquiry scan (discoverability) is enabled.
func (s ScanEnable) InquiryScan() bool { return s&ScanInquiryOnly != 0 }

// PageScan reports whether page scan (connectability) is enabled.
func (s ScanEnable) PageScan() bool { return s&ScanPageOnly != 0 }

// Inquiry starts device discovery (General Inquiry Access Code by default).
type Inquiry struct {
	LAP           uint32 // 24-bit inquiry access code, usually GIAC 0x9E8B33
	InquiryLength uint8  // duration in 1.28 s units
	NumResponses  uint8  // 0 = unlimited
}

// GIAC is the General Inquiry Access Code LAP.
const GIAC = 0x9E8B33

func (*Inquiry) Opcode() Opcode { return OpInquiry }

// MarshalParams implements Command.
func (c *Inquiry) MarshalParams() []byte {
	w := &writer{}
	w.u24(c.LAP)
	w.u8(c.InquiryLength)
	w.u8(c.NumResponses)
	return w.buf
}

// InquiryCancel stops an ongoing inquiry.
type InquiryCancel struct{}

func (*InquiryCancel) Opcode() Opcode { return OpInquiryCancel }

// MarshalParams implements Command.
func (*InquiryCancel) MarshalParams() []byte { return nil }

// CreateConnection initiates paging toward a peer BDADDR.
type CreateConnection struct {
	Addr                   bt.BDADDR
	PacketTypes            uint16
	PageScanRepetitionMode uint8
	ClockOffset            uint16
	AllowRoleSwitch        uint8
}

func (*CreateConnection) Opcode() Opcode { return OpCreateConnection }

// MarshalParams implements Command.
func (c *CreateConnection) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	w.u16(c.PacketTypes)
	w.u8(c.PageScanRepetitionMode)
	w.u8(0)
	w.u16(c.ClockOffset)
	w.u8(c.AllowRoleSwitch)
	return w.buf
}

// Disconnect tears down an established connection.
type Disconnect struct {
	Handle bt.ConnHandle
	Reason Status
}

func (*Disconnect) Opcode() Opcode { return OpDisconnect }

// MarshalParams implements Command.
func (c *Disconnect) MarshalParams() []byte {
	w := &writer{}
	w.u16(uint16(c.Handle))
	w.u8(uint8(c.Reason))
	return w.buf
}

// AcceptConnectionRequest accepts an incoming connection request event.
type AcceptConnectionRequest struct {
	Addr bt.BDADDR
	Role uint8 // 0x00 become master, 0x01 remain slave
}

func (*AcceptConnectionRequest) Opcode() Opcode { return OpAcceptConnectionRequest }

// MarshalParams implements Command.
func (c *AcceptConnectionRequest) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	w.u8(c.Role)
	return w.buf
}

// RejectConnectionRequest declines an incoming connection request event.
type RejectConnectionRequest struct {
	Addr   bt.BDADDR
	Reason Status
}

func (*RejectConnectionRequest) Opcode() Opcode { return OpRejectConnectionRequest }

// MarshalParams implements Command.
func (c *RejectConnectionRequest) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	w.u8(uint8(c.Reason))
	return w.buf
}

// LinkKeyRequestReply supplies a stored link key to the controller. This
// is the packet the link key extraction attack recovers from HCI dumps:
// its wire prefix is 01 0b 04 16 (H4 command, opcode 0x040B, 22 bytes).
type LinkKeyRequestReply struct {
	Addr bt.BDADDR
	Key  bt.LinkKey
}

func (*LinkKeyRequestReply) Opcode() Opcode { return OpLinkKeyRequestReply }

// MarshalParams implements Command. The link key crosses the HCI in
// plaintext — the root cause of the extraction attack.
func (c *LinkKeyRequestReply) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	w.key(c.Key)
	return w.buf
}

// LinkKeyRequestNegativeReply tells the controller no key is stored.
type LinkKeyRequestNegativeReply struct {
	Addr bt.BDADDR
}

func (*LinkKeyRequestNegativeReply) Opcode() Opcode { return OpLinkKeyRequestNegativeReply }

// MarshalParams implements Command.
func (c *LinkKeyRequestNegativeReply) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	return w.buf
}

// PINCodeRequestReply supplies a legacy pairing PIN.
type PINCodeRequestReply struct {
	Addr bt.BDADDR
	PIN  []byte
}

func (*PINCodeRequestReply) Opcode() Opcode { return OpPINCodeRequestReply }

// MarshalParams implements Command.
func (c *PINCodeRequestReply) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	w.u8(uint8(len(c.PIN)))
	var pin [16]byte
	copy(pin[:], c.PIN)
	w.raw(pin[:])
	return w.buf
}

// PINCodeRequestNegativeReply declines a legacy PIN request.
type PINCodeRequestNegativeReply struct {
	Addr bt.BDADDR
}

func (*PINCodeRequestNegativeReply) Opcode() Opcode { return OpPINCodeRequestNegativeReply }

// MarshalParams implements Command.
func (c *PINCodeRequestNegativeReply) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	return w.buf
}

// AuthenticationRequested starts LMP authentication on a connection; it is
// the first HCI message of a pairing (paper Fig. 12).
type AuthenticationRequested struct {
	Handle bt.ConnHandle
}

func (*AuthenticationRequested) Opcode() Opcode { return OpAuthenticationRequested }

// MarshalParams implements Command.
func (c *AuthenticationRequested) MarshalParams() []byte {
	w := &writer{}
	w.u16(uint16(c.Handle))
	return w.buf
}

// SetConnectionEncryption toggles link-level encryption.
type SetConnectionEncryption struct {
	Handle bt.ConnHandle
	Enable bool
}

func (*SetConnectionEncryption) Opcode() Opcode { return OpSetConnectionEncryption }

// MarshalParams implements Command.
func (c *SetConnectionEncryption) MarshalParams() []byte {
	w := &writer{}
	w.u16(uint16(c.Handle))
	if c.Enable {
		w.u8(1)
	} else {
		w.u8(0)
	}
	return w.buf
}

// RemoteNameRequest fetches the peer's user-friendly name.
type RemoteNameRequest struct {
	Addr                   bt.BDADDR
	PageScanRepetitionMode uint8
	ClockOffset            uint16
}

func (*RemoteNameRequest) Opcode() Opcode { return OpRemoteNameRequest }

// MarshalParams implements Command.
func (c *RemoteNameRequest) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	w.u8(c.PageScanRepetitionMode)
	w.u8(0)
	w.u16(c.ClockOffset)
	return w.buf
}

// IOCapabilityRequestReply answers the controller's IO capability request
// during SSP. The attacker sets Capability to NoInputNoOutput to force the
// Just Works downgrade.
type IOCapabilityRequestReply struct {
	Addr             bt.BDADDR
	Capability       bt.IOCapability
	OOBDataPresent   bool
	AuthRequirements uint8
}

func (*IOCapabilityRequestReply) Opcode() Opcode { return OpIOCapabilityRequestReply }

// MarshalParams implements Command.
func (c *IOCapabilityRequestReply) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	w.u8(uint8(c.Capability))
	if c.OOBDataPresent {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u8(c.AuthRequirements)
	return w.buf
}

// UserConfirmationRequestReply confirms the numeric comparison value.
type UserConfirmationRequestReply struct {
	Addr bt.BDADDR
}

func (*UserConfirmationRequestReply) Opcode() Opcode { return OpUserConfirmationRequestReply }

// MarshalParams implements Command.
func (c *UserConfirmationRequestReply) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	return w.buf
}

// UserConfirmationRequestNegativeReply rejects the numeric comparison.
type UserConfirmationRequestNegativeReply struct {
	Addr bt.BDADDR
}

func (*UserConfirmationRequestNegativeReply) Opcode() Opcode {
	return OpUserConfirmationRequestNegRep
}

// MarshalParams implements Command.
func (c *UserConfirmationRequestNegativeReply) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	return w.buf
}

// Reset returns the controller to its initial state.
type Reset struct{}

func (*Reset) Opcode() Opcode { return OpReset }

// MarshalParams implements Command.
func (*Reset) MarshalParams() []byte { return nil }

// WriteLocalName sets the controller's user-friendly name.
type WriteLocalName struct {
	Name string
}

func (*WriteLocalName) Opcode() Opcode { return OpWriteLocalName }

// MarshalParams implements Command. The name field is a fixed 248-byte
// null-padded UTF-8 string on the wire.
func (c *WriteLocalName) MarshalParams() []byte {
	buf := make([]byte, 248)
	copy(buf, c.Name)
	return buf
}

// WriteScanEnable controls inquiry scan and page scan.
type WriteScanEnable struct {
	ScanEnable ScanEnable
}

func (*WriteScanEnable) Opcode() Opcode { return OpWriteScanEnable }

// MarshalParams implements Command.
func (c *WriteScanEnable) MarshalParams() []byte { return []byte{byte(c.ScanEnable)} }

// WriteClassOfDevice sets the COD advertised in inquiry responses.
type WriteClassOfDevice struct {
	COD bt.ClassOfDevice
}

func (*WriteClassOfDevice) Opcode() Opcode { return OpWriteClassOfDevice }

// MarshalParams implements Command.
func (c *WriteClassOfDevice) MarshalParams() []byte {
	b := c.COD.Bytes()
	return b[:]
}

// WriteSimplePairingMode enables SSP on the controller.
type WriteSimplePairingMode struct {
	Enabled bool
}

func (*WriteSimplePairingMode) Opcode() Opcode { return OpWriteSimplePairingMode }

// MarshalParams implements Command.
func (c *WriteSimplePairingMode) MarshalParams() []byte {
	if c.Enabled {
		return []byte{1}
	}
	return []byte{0}
}

// ReadBDADDR queries the controller's public device address.
type ReadBDADDR struct{}

func (*ReadBDADDR) Opcode() Opcode { return OpReadBDADDR }

// MarshalParams implements Command.
func (*ReadBDADDR) MarshalParams() []byte { return nil }

// UserPasskeyRequestReply supplies the passkey the user typed on a
// KeyboardOnly device during passkey entry.
type UserPasskeyRequestReply struct {
	Addr    bt.BDADDR
	Passkey uint32
}

func (*UserPasskeyRequestReply) Opcode() Opcode { return OpUserPasskeyRequestReply }

// MarshalParams implements Command.
func (c *UserPasskeyRequestReply) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	w.u32(c.Passkey)
	return w.buf
}

// UserPasskeyRequestNegativeReply declines a passkey request.
type UserPasskeyRequestNegativeReply struct {
	Addr bt.BDADDR
}

func (*UserPasskeyRequestNegativeReply) Opcode() Opcode { return OpUserPasskeyRequestNegReply }

// MarshalParams implements Command.
func (c *UserPasskeyRequestNegativeReply) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	return w.buf
}

// RemoteOOBDataRequestReply supplies the peer's out-of-band commitment
// and random, obtained over a separate channel (e.g. NFC).
type RemoteOOBDataRequestReply struct {
	Addr bt.BDADDR
	C    [16]byte // simple pairing hash (f1 commitment to the peer's public key)
	R    [16]byte // simple pairing randomizer
}

func (*RemoteOOBDataRequestReply) Opcode() Opcode { return OpRemoteOOBDataRequestReply }

// MarshalParams implements Command.
func (c *RemoteOOBDataRequestReply) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	w.raw(c.C[:])
	w.raw(c.R[:])
	return w.buf
}

// RemoteOOBDataRequestNegativeReply reports that no OOB data is available
// for the peer.
type RemoteOOBDataRequestNegativeReply struct {
	Addr bt.BDADDR
}

func (*RemoteOOBDataRequestNegativeReply) Opcode() Opcode { return OpRemoteOOBDataRequestNegReply }

// MarshalParams implements Command.
func (c *RemoteOOBDataRequestNegativeReply) MarshalParams() []byte {
	w := &writer{}
	w.addr(c.Addr)
	return w.buf
}

// ReadLocalOOBData asks the controller for this device's OOB commitment
// and random, to be carried to the peer out of band.
type ReadLocalOOBData struct{}

func (*ReadLocalOOBData) Opcode() Opcode { return OpReadLocalOOBData }

// MarshalParams implements Command.
func (*ReadLocalOOBData) MarshalParams() []byte { return nil }
