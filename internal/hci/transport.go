package hci

import (
	"time"

	"repro/internal/bt"
	"repro/internal/sim"
)

// Tap observes every packet crossing an HCI transport, in wire form. The
// snoop logger and the USB sniffer are taps; so is the link-key-filtering
// mitigation.
type Tap interface {
	// Observe is called once per packet with the full H4 wire bytes. at is
	// the virtual time of transmission. Implementations must not retain
	// wire beyond the call.
	Observe(at time.Duration, dir Direction, wire []byte)
}

// TapFunc adapts a function to the Tap interface.
type TapFunc func(at time.Duration, dir Direction, wire []byte)

// Observe implements Tap.
func (f TapFunc) Observe(at time.Duration, dir Direction, wire []byte) { f(at, dir, wire) }

// Endpoint consumes packets arriving at one side of a transport.
type Endpoint interface {
	HandlePacket(p Packet)
}

// Transport is a bidirectional, in-order HCI link between a host and a
// controller with a fixed per-packet latency, modelling a UART or USB
// physical interface. Taps see packets at send time.
type Transport struct {
	sched      *sim.Scheduler
	latency    time.Duration
	host       Endpoint
	controller Endpoint
	taps       []Tap
	dropped    bool
}

// NewTransport creates a transport on the given scheduler with the given
// one-way latency. Endpoints are attached afterwards with AttachHost and
// AttachController.
func NewTransport(s *sim.Scheduler, latency time.Duration) *Transport {
	if latency < 0 {
		latency = 0
	}
	return &Transport{sched: s, latency: latency}
}

// AttachHost sets the host-side endpoint.
func (t *Transport) AttachHost(e Endpoint) { t.host = e }

// AttachController sets the controller-side endpoint.
func (t *Transport) AttachController(e Endpoint) { t.controller = e }

// AddTap registers an observer of all traffic. Taps run in registration
// order at send time.
func (t *Transport) AddTap(tap Tap) { t.taps = append(t.taps, tap) }

// Down makes the transport silently drop all future packets; used by
// fault-injection tests.
func (t *Transport) Down() { t.dropped = true }

// Up restores packet delivery after Down.
func (t *Transport) Up() { t.dropped = false }

// Send transmits a packet toward the peer endpoint of dir. The packet is
// observed by taps immediately and delivered after the transport latency.
func (t *Transport) Send(p Packet) {
	wire := p.Wire()
	for _, tap := range t.taps {
		tap.Observe(t.sched.Now(), p.Dir, wire)
	}
	if t.dropped {
		return
	}
	var dst Endpoint
	if p.Dir == DirHostToController {
		dst = t.controller
	} else {
		dst = t.host
	}
	if dst == nil {
		return
	}
	t.sched.Schedule(t.latency, func() { dst.HandlePacket(p) })
}

// SendCommand encodes and transmits a command from the host side.
func (t *Transport) SendCommand(c Command) { t.Send(EncodeCommand(c)) }

// SendEvent encodes and transmits an event from the controller side.
func (t *Transport) SendEvent(e Event) { t.Send(EncodeEvent(e)) }

// EncodeACL builds an ACL data packet for a connection handle. Flags are
// fixed to "first automatically flushable" for simplicity.
func EncodeACL(dir Direction, handle bt.ConnHandle, data []byte) Packet {
	body := make([]byte, 4+len(data))
	hf := uint16(handle)&0x0FFF | 0x2000 // PB flag 10b: first auto-flushable
	body[0] = byte(hf)
	body[1] = byte(hf >> 8)
	body[2] = byte(len(data))
	body[3] = byte(len(data) >> 8)
	copy(body[4:], data)
	return Packet{Dir: dir, PT: PTACLData, Body: body}
}

// ParseACL extracts the handle and payload from an ACL data packet.
func ParseACL(p Packet) (bt.ConnHandle, []byte, bool) {
	if p.PT != PTACLData || len(p.Body) < 4 {
		return 0, nil, false
	}
	handle := bt.ConnHandle(uint16(p.Body[0]) | uint16(p.Body[1])<<8)
	return handle & 0x0FFF, p.Body[4:], true
}
