package hci

import (
	"fmt"

	"repro/internal/bt"
)

// Event is a typed HCI event. Marshalling produces the parameter bytes
// only; EncodeEvent adds the event/length header and H4 indicator.
type Event interface {
	Code() EventCode
	MarshalParams() []byte
}

// EncodeEvent builds a complete H4 event packet.
func EncodeEvent(e Event) Packet {
	params := e.MarshalParams()
	body := make([]byte, 2+len(params))
	body[0] = byte(e.Code())
	body[1] = byte(len(params))
	copy(body[2:], params)
	return Packet{Dir: DirControllerToHost, PT: PTEvent, Body: body}
}

// ParseEvent decodes an event packet into its typed form.
func ParseEvent(p Packet) (Event, error) {
	code, ok := p.EventCode()
	if !ok {
		return nil, fmt.Errorf("%w: not an event packet", ErrTruncated)
	}
	params := p.Body[2:]
	r := reader{buf: params}
	var e Event
	switch code {
	case EvInquiryComplete:
		v := &InquiryComplete{}
		v.Status = Status(r.u8())
		e = v
	case EvInquiryResult:
		v := &InquiryResult{}
		n := int(r.u8())
		for i := 0; i < n; i++ {
			var res InquiryResponse
			res.Addr = r.addr()
			res.PageScanRepetitionMode = r.u8()
			r.u16() // reserved
			var cod [3]byte
			copy(cod[:], r.bytes(3))
			res.COD = bt.CODFromBytes(cod)
			res.ClockOffset = r.u16()
			v.Responses = append(v.Responses, res)
		}
		e = v
	case EvConnectionComplete:
		v := &ConnectionComplete{}
		v.Status = Status(r.u8())
		v.Handle = bt.ConnHandle(r.u16())
		v.Addr = r.addr()
		v.LinkType = r.u8()
		v.EncryptionEnabled = r.u8() != 0
		e = v
	case EvConnectionRequest:
		v := &ConnectionRequest{}
		v.Addr = r.addr()
		var cod [3]byte
		copy(cod[:], r.bytes(3))
		v.COD = bt.CODFromBytes(cod)
		v.LinkType = r.u8()
		e = v
	case EvDisconnectionComplete:
		v := &DisconnectionComplete{}
		v.Status = Status(r.u8())
		v.Handle = bt.ConnHandle(r.u16())
		v.Reason = Status(r.u8())
		e = v
	case EvAuthenticationComplete:
		v := &AuthenticationComplete{}
		v.Status = Status(r.u8())
		v.Handle = bt.ConnHandle(r.u16())
		e = v
	case EvRemoteNameRequestComplete:
		v := &RemoteNameRequestComplete{}
		v.Status = Status(r.u8())
		v.Addr = r.addr()
		raw := r.bytes(len(r.buf))
		for i, b := range raw {
			if b == 0 {
				raw = raw[:i]
				break
			}
		}
		v.Name = string(raw)
		e = v
	case EvEncryptionChange:
		v := &EncryptionChange{}
		v.Status = Status(r.u8())
		v.Handle = bt.ConnHandle(r.u16())
		v.Enabled = r.u8() != 0
		e = v
	case EvCommandComplete:
		v := &CommandComplete{}
		v.NumPackets = r.u8()
		v.CommandOpcode = Opcode(r.u16())
		v.ReturnParams = r.bytes(len(r.buf))
		e = v
	case EvCommandStatus:
		v := &CommandStatus{}
		v.Status = Status(r.u8())
		v.NumPackets = r.u8()
		v.CommandOpcode = Opcode(r.u16())
		e = v
	case EvPINCodeRequest:
		v := &PINCodeRequest{}
		v.Addr = r.addr()
		e = v
	case EvLinkKeyRequest:
		v := &LinkKeyRequest{}
		v.Addr = r.addr()
		e = v
	case EvLinkKeyNotification:
		v := &LinkKeyNotification{}
		v.Addr = r.addr()
		v.Key = r.key()
		v.KeyType = bt.LinkKeyType(r.u8())
		e = v
	case EvIOCapabilityRequest:
		v := &IOCapabilityRequest{}
		v.Addr = r.addr()
		e = v
	case EvIOCapabilityResponse:
		v := &IOCapabilityResponse{}
		v.Addr = r.addr()
		v.Capability = bt.IOCapability(r.u8())
		v.OOBDataPresent = r.u8() != 0
		v.AuthRequirements = r.u8()
		e = v
	case EvUserConfirmationRequest:
		v := &UserConfirmationRequest{}
		v.Addr = r.addr()
		v.NumericValue = r.u32()
		e = v
	case EvUserPasskeyRequest:
		v := &UserPasskeyRequest{}
		v.Addr = r.addr()
		e = v
	case EvRemoteOOBDataRequest:
		v := &RemoteOOBDataRequest{}
		v.Addr = r.addr()
		e = v
	case EvUserPasskeyNotification:
		v := &UserPasskeyNotification{}
		v.Addr = r.addr()
		v.Passkey = r.u32()
		e = v
	case EvSimplePairingComplete:
		v := &SimplePairingComplete{}
		v.Status = Status(r.u8())
		v.Addr = r.addr()
		e = v
	default:
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownEvent, uint8(code))
	}
	if r.err != nil {
		return nil, fmt.Errorf("hci: parsing %s: %w", code, r.err)
	}
	return e, nil
}

// InquiryComplete signals the end of an inquiry.
type InquiryComplete struct {
	Status Status
}

func (*InquiryComplete) Code() EventCode { return EvInquiryComplete }

// MarshalParams implements Event.
func (e *InquiryComplete) MarshalParams() []byte { return []byte{byte(e.Status)} }

// InquiryResponse is one device reported by an inquiry result event.
type InquiryResponse struct {
	Addr                   bt.BDADDR
	PageScanRepetitionMode uint8
	COD                    bt.ClassOfDevice
	ClockOffset            uint16
}

// InquiryResult carries one or more discovered devices.
type InquiryResult struct {
	Responses []InquiryResponse
}

func (*InquiryResult) Code() EventCode { return EvInquiryResult }

// MarshalParams implements Event.
func (e *InquiryResult) MarshalParams() []byte {
	w := &writer{}
	w.u8(uint8(len(e.Responses)))
	for _, res := range e.Responses {
		w.addr(res.Addr)
		w.u8(res.PageScanRepetitionMode)
		w.u16(0)
		cod := res.COD.Bytes()
		w.raw(cod[:])
		w.u16(res.ClockOffset)
	}
	return w.buf
}

// ConnectionComplete reports the outcome of connection establishment.
type ConnectionComplete struct {
	Status            Status
	Handle            bt.ConnHandle
	Addr              bt.BDADDR
	LinkType          uint8 // 0x01 = ACL
	EncryptionEnabled bool
}

// LinkTypeACL is the ACL link type value.
const LinkTypeACL = 0x01

func (*ConnectionComplete) Code() EventCode { return EvConnectionComplete }

// MarshalParams implements Event.
func (e *ConnectionComplete) MarshalParams() []byte {
	w := &writer{}
	w.u8(uint8(e.Status))
	w.u16(uint16(e.Handle))
	w.addr(e.Addr)
	w.u8(e.LinkType)
	if e.EncryptionEnabled {
		w.u8(1)
	} else {
		w.u8(0)
	}
	return w.buf
}

// ConnectionRequest notifies the host of an incoming page. Its presence
// before HCI_Authentication_Requested on the same device is the forensic
// signature of the page blocking attack (paper Fig. 12b).
type ConnectionRequest struct {
	Addr     bt.BDADDR
	COD      bt.ClassOfDevice
	LinkType uint8
}

func (*ConnectionRequest) Code() EventCode { return EvConnectionRequest }

// MarshalParams implements Event.
func (e *ConnectionRequest) MarshalParams() []byte {
	w := &writer{}
	w.addr(e.Addr)
	cod := e.COD.Bytes()
	w.raw(cod[:])
	w.u8(e.LinkType)
	return w.buf
}

// DisconnectionComplete reports link teardown.
type DisconnectionComplete struct {
	Status Status
	Handle bt.ConnHandle
	Reason Status
}

func (*DisconnectionComplete) Code() EventCode { return EvDisconnectionComplete }

// MarshalParams implements Event.
func (e *DisconnectionComplete) MarshalParams() []byte {
	w := &writer{}
	w.u8(uint8(e.Status))
	w.u16(uint16(e.Handle))
	w.u8(uint8(e.Reason))
	return w.buf
}

// AuthenticationComplete reports the outcome of LMP authentication.
type AuthenticationComplete struct {
	Status Status
	Handle bt.ConnHandle
}

func (*AuthenticationComplete) Code() EventCode { return EvAuthenticationComplete }

// MarshalParams implements Event.
func (e *AuthenticationComplete) MarshalParams() []byte {
	w := &writer{}
	w.u8(uint8(e.Status))
	w.u16(uint16(e.Handle))
	return w.buf
}

// RemoteNameRequestComplete carries the peer's name.
type RemoteNameRequestComplete struct {
	Status Status
	Addr   bt.BDADDR
	Name   string
}

func (*RemoteNameRequestComplete) Code() EventCode { return EvRemoteNameRequestComplete }

// MarshalParams implements Event. The name is a fixed 248-byte field.
func (e *RemoteNameRequestComplete) MarshalParams() []byte {
	w := &writer{}
	w.u8(uint8(e.Status))
	w.addr(e.Addr)
	name := make([]byte, 248)
	copy(name, e.Name)
	w.raw(name)
	return w.buf
}

// EncryptionChange reports link encryption toggling.
type EncryptionChange struct {
	Status  Status
	Handle  bt.ConnHandle
	Enabled bool
}

func (*EncryptionChange) Code() EventCode { return EvEncryptionChange }

// MarshalParams implements Event.
func (e *EncryptionChange) MarshalParams() []byte {
	w := &writer{}
	w.u8(uint8(e.Status))
	w.u16(uint16(e.Handle))
	if e.Enabled {
		w.u8(1)
	} else {
		w.u8(0)
	}
	return w.buf
}

// CommandComplete acknowledges a command that finished immediately.
type CommandComplete struct {
	NumPackets    uint8
	CommandOpcode Opcode
	ReturnParams  []byte
}

func (*CommandComplete) Code() EventCode { return EvCommandComplete }

// MarshalParams implements Event.
func (e *CommandComplete) MarshalParams() []byte {
	w := &writer{}
	w.u8(e.NumPackets)
	w.u16(uint16(e.CommandOpcode))
	w.raw(e.ReturnParams)
	return w.buf
}

// CommandStatus acknowledges a command whose outcome arrives later.
type CommandStatus struct {
	Status        Status
	NumPackets    uint8
	CommandOpcode Opcode
}

func (*CommandStatus) Code() EventCode { return EvCommandStatus }

// MarshalParams implements Event.
func (e *CommandStatus) MarshalParams() []byte {
	w := &writer{}
	w.u8(uint8(e.Status))
	w.u8(e.NumPackets)
	w.u16(uint16(e.CommandOpcode))
	return w.buf
}

// PINCodeRequest asks the host for a legacy pairing PIN.
type PINCodeRequest struct {
	Addr bt.BDADDR
}

func (*PINCodeRequest) Code() EventCode { return EvPINCodeRequest }

// MarshalParams implements Event.
func (e *PINCodeRequest) MarshalParams() []byte {
	w := &writer{}
	w.addr(e.Addr)
	return w.buf
}

// LinkKeyRequest asks the host for a stored link key before LMP
// authentication; the host's positive reply is what HCI dumps capture.
type LinkKeyRequest struct {
	Addr bt.BDADDR
}

func (*LinkKeyRequest) Code() EventCode { return EvLinkKeyRequest }

// MarshalParams implements Event.
func (e *LinkKeyRequest) MarshalParams() []byte {
	w := &writer{}
	w.addr(e.Addr)
	return w.buf
}

// LinkKeyNotification delivers a freshly generated link key to the host
// for storage — in plaintext, the other message the extraction attack
// targets.
type LinkKeyNotification struct {
	Addr    bt.BDADDR
	Key     bt.LinkKey
	KeyType bt.LinkKeyType
}

func (*LinkKeyNotification) Code() EventCode { return EvLinkKeyNotification }

// MarshalParams implements Event.
func (e *LinkKeyNotification) MarshalParams() []byte {
	w := &writer{}
	w.addr(e.Addr)
	w.key(e.Key)
	w.u8(uint8(e.KeyType))
	return w.buf
}

// IOCapabilityRequest asks the host for its SSP IO capability.
type IOCapabilityRequest struct {
	Addr bt.BDADDR
}

func (*IOCapabilityRequest) Code() EventCode { return EvIOCapabilityRequest }

// MarshalParams implements Event.
func (e *IOCapabilityRequest) MarshalParams() []byte {
	w := &writer{}
	w.addr(e.Addr)
	return w.buf
}

// IOCapabilityResponse reports the peer's SSP IO capability.
type IOCapabilityResponse struct {
	Addr             bt.BDADDR
	Capability       bt.IOCapability
	OOBDataPresent   bool
	AuthRequirements uint8
}

func (*IOCapabilityResponse) Code() EventCode { return EvIOCapabilityResponse }

// MarshalParams implements Event.
func (e *IOCapabilityResponse) MarshalParams() []byte {
	w := &writer{}
	w.addr(e.Addr)
	w.u8(uint8(e.Capability))
	if e.OOBDataPresent {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u8(e.AuthRequirements)
	return w.buf
}

// UserConfirmationRequest asks the user to confirm the six-digit value
// (numeric comparison) or simply to accept pairing (Just Works, v5.0+).
type UserConfirmationRequest struct {
	Addr         bt.BDADDR
	NumericValue uint32
}

func (*UserConfirmationRequest) Code() EventCode { return EvUserConfirmationRequest }

// MarshalParams implements Event.
func (e *UserConfirmationRequest) MarshalParams() []byte {
	w := &writer{}
	w.addr(e.Addr)
	w.u32(e.NumericValue)
	return w.buf
}

// SimplePairingComplete reports the outcome of SSP authentication stage 1.
type SimplePairingComplete struct {
	Status Status
	Addr   bt.BDADDR
}

func (*SimplePairingComplete) Code() EventCode { return EvSimplePairingComplete }

// MarshalParams implements Event.
func (e *SimplePairingComplete) MarshalParams() []byte {
	w := &writer{}
	w.u8(uint8(e.Status))
	w.addr(e.Addr)
	return w.buf
}

// UserPasskeyRequest asks the host for the passkey the user types on a
// KeyboardOnly device.
type UserPasskeyRequest struct {
	Addr bt.BDADDR
}

func (*UserPasskeyRequest) Code() EventCode { return EvUserPasskeyRequest }

// MarshalParams implements Event.
func (e *UserPasskeyRequest) MarshalParams() []byte {
	w := &writer{}
	w.addr(e.Addr)
	return w.buf
}

// UserPasskeyNotification tells the host to display the passkey generated
// for the peer's keyboard entry.
type UserPasskeyNotification struct {
	Addr    bt.BDADDR
	Passkey uint32
}

func (*UserPasskeyNotification) Code() EventCode { return EvUserPasskeyNotification }

// MarshalParams implements Event.
func (e *UserPasskeyNotification) MarshalParams() []byte {
	w := &writer{}
	w.addr(e.Addr)
	w.u32(e.Passkey)
	return w.buf
}

// RemoteOOBDataRequest asks the host for the peer's out-of-band pairing
// data during an OOB association.
type RemoteOOBDataRequest struct {
	Addr bt.BDADDR
}

func (*RemoteOOBDataRequest) Code() EventCode { return EvRemoteOOBDataRequest }

// MarshalParams implements Event.
func (e *RemoteOOBDataRequest) MarshalParams() []byte {
	w := &writer{}
	w.addr(e.Addr)
	return w.buf
}
