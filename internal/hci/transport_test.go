package hci

import (
	"testing"
	"time"

	"repro/internal/bt"
	"repro/internal/sim"
)

type recordingEndpoint struct {
	packets []Packet
}

func (r *recordingEndpoint) HandlePacket(p Packet) { r.packets = append(r.packets, p) }

func TestTransportDeliversToCorrectEndpoint(t *testing.T) {
	s := sim.NewScheduler(1)
	tr := NewTransport(s, time.Millisecond)
	hostEnd := &recordingEndpoint{}
	ctrlEnd := &recordingEndpoint{}
	tr.AttachHost(hostEnd)
	tr.AttachController(ctrlEnd)

	tr.SendCommand(&Reset{})
	tr.SendEvent(&InquiryComplete{Status: StatusSuccess})
	s.Run(0)

	if len(ctrlEnd.packets) != 1 || ctrlEnd.packets[0].PT != PTCommand {
		t.Fatalf("controller received %v", ctrlEnd.packets)
	}
	if len(hostEnd.packets) != 1 || hostEnd.packets[0].PT != PTEvent {
		t.Fatalf("host received %v", hostEnd.packets)
	}
}

func TestTransportLatency(t *testing.T) {
	s := sim.NewScheduler(1)
	const lat = 5 * time.Millisecond
	tr := NewTransport(s, lat)
	ctrlEnd := &recordingEndpoint{}
	tr.AttachController(ctrlEnd)

	tr.SendCommand(&Reset{})
	s.RunFor(lat - time.Millisecond)
	if len(ctrlEnd.packets) != 0 {
		t.Fatal("packet arrived before the transport latency")
	}
	s.RunFor(2 * time.Millisecond)
	if len(ctrlEnd.packets) != 1 {
		t.Fatal("packet lost")
	}
}

func TestTapsSeeAllTrafficAtSendTime(t *testing.T) {
	s := sim.NewScheduler(1)
	tr := NewTransport(s, time.Millisecond)
	tr.AttachController(&recordingEndpoint{})

	var taps []struct {
		dir  Direction
		wire []byte
	}
	tr.AddTap(TapFunc(func(_ time.Duration, dir Direction, wire []byte) {
		taps = append(taps, struct {
			dir  Direction
			wire []byte
		}{dir, append([]byte(nil), wire...)})
	}))

	tr.SendCommand(&Reset{})
	// The tap fires synchronously at send time, before delivery.
	if len(taps) != 1 {
		t.Fatalf("tap records: %d", len(taps))
	}
	if taps[0].dir != DirHostToController {
		t.Fatalf("tap dir: %v", taps[0].dir)
	}
	if taps[0].wire[0] != byte(PTCommand) {
		t.Fatalf("tap wire: %x", taps[0].wire)
	}
}

func TestTransportDownDropsSilently(t *testing.T) {
	s := sim.NewScheduler(1)
	tr := NewTransport(s, time.Millisecond)
	ctrlEnd := &recordingEndpoint{}
	tr.AttachController(ctrlEnd)
	tapped := 0
	tr.AddTap(TapFunc(func(time.Duration, Direction, []byte) { tapped++ }))

	tr.Down()
	tr.SendCommand(&Reset{})
	s.Run(0)
	if len(ctrlEnd.packets) != 0 {
		t.Fatal("down transport delivered a packet")
	}
	if tapped != 1 {
		t.Fatal("taps observe even dropped traffic (a sniffer clamps the wire, not the endpoint)")
	}

	tr.Up()
	tr.SendCommand(&Reset{})
	s.Run(0)
	if len(ctrlEnd.packets) != 1 {
		t.Fatal("transport did not recover after Up")
	}
}

func TestSendWithoutEndpointIsSafe(t *testing.T) {
	s := sim.NewScheduler(1)
	tr := NewTransport(s, 0)
	tr.SendCommand(&Reset{}) // no endpoints attached: must not panic
	tr.Send(EncodeACL(DirControllerToHost, bt.ConnHandle(1), []byte{1, 2, 3, 4, 5, 6}))
	s.Run(0)
}

func TestNegativeLatencyClamped(t *testing.T) {
	s := sim.NewScheduler(1)
	tr := NewTransport(s, -time.Second)
	end := &recordingEndpoint{}
	tr.AttachController(end)
	tr.SendCommand(&Reset{})
	s.Run(0)
	if len(end.packets) != 1 {
		t.Fatal("negative latency should clamp to zero, not break delivery")
	}
}
