package hci

import "testing"

// FuzzParseWire throws arbitrary bytes at the H4 parser: it must never
// panic, and anything it accepts must re-encode without crashing.
func FuzzParseWire(f *testing.F) {
	f.Add([]byte{0x01, 0x03, 0x0c, 0x00})
	f.Add([]byte{0x04, 0x17, 0x06, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{0x02, 0x01, 0x20, 0x02, 0x00, 0xAA, 0xBB})
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, raw []byte) {
		for _, dir := range []Direction{DirHostToController, DirControllerToHost} {
			pkt, err := ParseWire(dir, raw)
			if err != nil {
				continue
			}
			// Accepted packets must round-trip through Wire().
			if got := pkt.Wire(); len(got) != len(raw) {
				t.Fatalf("Wire() length changed: %d vs %d", len(got), len(raw))
			}
			switch pkt.PT {
			case PTCommand:
				if cmd, err := ParseCommand(pkt); err == nil {
					EncodeCommand(cmd) // must not panic
				}
			case PTEvent:
				if evt, err := ParseEvent(pkt); err == nil {
					EncodeEvent(evt)
				}
			case PTACLData:
				ParseACL(pkt)
			}
		}
	})
}

// FuzzParseCommandBody fuzzes the command-parameter layer directly with
// every known opcode.
func FuzzParseCommandBody(f *testing.F) {
	f.Add(uint16(OpLinkKeyRequestReply), []byte{})
	f.Add(uint16(OpCreateConnection), make([]byte, 13))
	f.Fuzz(func(t *testing.T, op uint16, params []byte) {
		if len(params) > 255 {
			params = params[:255]
		}
		body := append([]byte{byte(op), byte(op >> 8), byte(len(params))}, params...)
		pkt := Packet{Dir: DirHostToController, PT: PTCommand, Body: body}
		if cmd, err := ParseCommand(pkt); err == nil {
			EncodeCommand(cmd)
		}
	})
}

// FuzzParseEventBody fuzzes the event-parameter layer.
func FuzzParseEventBody(f *testing.F) {
	f.Add(uint8(EvLinkKeyNotification), []byte{})
	f.Add(uint8(EvInquiryResult), []byte{5, 1, 2, 3})
	f.Fuzz(func(t *testing.T, code uint8, params []byte) {
		if len(params) > 255 {
			params = params[:255]
		}
		body := append([]byte{code, byte(len(params))}, params...)
		pkt := Packet{Dir: DirControllerToHost, PT: PTEvent, Body: body}
		if evt, err := ParseEvent(pkt); err == nil {
			EncodeEvent(evt)
		}
	})
}
