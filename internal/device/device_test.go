package device

import (
	"strings"
	"testing"

	"repro/internal/bt"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/snoop"
)

func assemble(t *testing.T, p Platform, opts Options) *Device {
	t.Helper()
	s := sim.NewScheduler(1)
	med := radio.NewMedium(s, radio.DefaultConfig())
	d := New(s, med, "dev", bt.MustBDADDR("01:02:03:04:05:06"), p, opts)
	s.Run(0)
	return d
}

func TestSnoopAttachmentByPlatform(t *testing.T) {
	android := assemble(t, GalaxyS21Android11, Options{})
	if android.Snoop == nil {
		t.Fatal("Android platforms carry a snoop log")
	}
	iphone := assemble(t, IPhoneXsIOS14, Options{})
	if iphone.Snoop != nil {
		t.Fatal("the iPhone provides no HCI dump")
	}
	if _, err := iphone.PullSnoopLog(); err == nil {
		t.Fatal("PullSnoopLog must fail without a snoop facility")
	}
	forced := assemble(t, IPhoneXsIOS14, Options{ForceSnoop: true})
	if forced.Snoop == nil {
		t.Fatal("ForceSnoop must attach a dump anywhere")
	}
}

func TestUSBSnifferOnlyOnUSBTransport(t *testing.T) {
	win := assemble(t, Windows10MSDriver, Options{AttachUSBSniffer: true})
	if win.USB == nil {
		t.Fatal("USB platform with sniffer requested must have one")
	}
	phone := assemble(t, GalaxyS21Android11, Options{AttachUSBSniffer: true})
	if phone.USB != nil {
		t.Fatal("UART platforms cannot be USB-sniffed")
	}
}

func TestPullSnoopLogIsValidBtsnoop(t *testing.T) {
	d := assemble(t, Pixel2XLAndroid11, Options{})
	data, err := d.PullSnoopLog()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := snoop.ReadAll(data)
	if err != nil {
		t.Fatalf("pulled log is not valid btsnoop: %v", err)
	}
	// Host.Start issued at least the simple-pairing/scan-enable commands.
	if len(recs) < 3 {
		t.Fatalf("startup traffic missing: %d records", len(recs))
	}
}

func TestSpoofIdentity(t *testing.T) {
	d := assemble(t, Nexus5XAndroid6, Options{})
	spoof := bt.MustBDADDR("48:90:51:1e:7f:2c")
	d.SpoofIdentity(spoof, bt.CODHandsFree)
	if d.Addr() != spoof {
		t.Fatalf("addr = %s", d.Addr())
	}
	if d.Controller.Info().COD != bt.CODHandsFree {
		t.Fatalf("cod = %s", d.Controller.Info().COD)
	}
	if !strings.Contains(d.String(), "48:90:51:1e:7f:2c") {
		t.Fatalf("String: %s", d)
	}
}
