package device_test

import (
	"errors"
	"testing"

	"repro/internal/bt"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/snoop"
)

// newWorld builds a scheduler and medium with a fixed seed.
func newWorld(seed int64) (*sim.Scheduler, *radio.Medium) {
	s := sim.NewScheduler(seed)
	return s, radio.NewMedium(s, radio.DefaultConfig())
}

var (
	addrM = bt.MustBDADDR("48:90:11:22:33:44")
	addrC = bt.MustBDADDR("00:1a:7d:da:71:0a")
	addrA = bt.MustBDADDR("aa:bb:cc:dd:ee:ff")
)

func TestPairBondAndReconnect(t *testing.T) {
	s, med := newWorld(1)
	m := device.New(s, med, "VELVET", addrM, device.LGVELVETAndroid11, device.Options{})
	c := device.New(s, med, "CarKit", addrC, device.HandsFreeKit, device.Options{
		Services: []host.ServiceUUID{host.UUIDHandsFree, host.UUIDNAP},
	})

	user := host.NewSimUser(s)
	m.Host.SetUI(user)
	user.ExpectPairing(addrC)

	var pairErr error
	done := false
	m.Host.Pair(addrC, func(err error) { pairErr = err; done = true })
	s.Run(0)

	if !done {
		t.Fatal("pairing never completed")
	}
	if pairErr != nil {
		t.Fatalf("pairing failed: %v", pairErr)
	}

	bm := m.Host.Bonds().Get(addrC)
	bc := c.Host.Bonds().Get(addrM)
	if bm == nil || bc == nil {
		t.Fatalf("bond missing: m=%v c=%v", bm, bc)
	}
	if bm.Key != bc.Key {
		t.Fatalf("link keys disagree: %s vs %s", bm.Key, bc.Key)
	}
	if bm.Key.IsZero() {
		t.Fatal("derived link key is zero")
	}
	if bm.KeyType != bt.KeyTypeUnauthenticatedP256 {
		t.Fatalf("Just Works should yield an unauthenticated key, got %s", bm.KeyType)
	}

	// The v5.1 DisplayYesNo initiator must have seen exactly one bare
	// consent dialog (paper Fig. 7b).
	prompts := user.Prompts()
	if len(prompts) != 1 {
		t.Fatalf("want 1 user prompt, got %d", len(prompts))
	}
	if prompts[0].Kind != host.KindJustWorksConsent {
		t.Fatalf("want just-works consent dialog, got %v", prompts[0].Kind)
	}

	// Reconnect: LMP authentication with the stored key must succeed
	// without any new pairing (no further prompts).
	m.Host.Disconnect(addrC)
	s.Run(0)
	if m.Host.Connection(addrC) != nil {
		t.Fatal("connection should be gone after disconnect")
	}

	var authErr error
	authDone := false
	m.Host.Pair(addrC, func(err error) { authErr = err; authDone = true })
	s.Run(0)
	if !authDone || authErr != nil {
		t.Fatalf("bonded reconnect failed: done=%v err=%v", authDone, authErr)
	}
	if got := len(user.Prompts()); got != 1 {
		t.Fatalf("bonded reconnect must not re-prompt; prompts=%d", got)
	}

	// The phone's HCI snoop log must contain the link key in plaintext —
	// the paper's Fig. 3 observation.
	hits := snoop.ExtractLinkKeys(m.Snoop.Records())
	if len(hits) == 0 {
		t.Fatal("no link keys in the HCI dump")
	}
	found := false
	for _, h := range hits {
		if h.Peer == addrC && h.Key == bm.Key {
			found = true
		}
	}
	if !found {
		t.Fatalf("dump does not contain the bonded key %s for %s; hits=%v", bm.Key, addrC, hits)
	}
}

func TestProfileConnectRequiresService(t *testing.T) {
	s, med := newWorld(2)
	m := device.New(s, med, "Phone", addrM, device.Pixel2XLAndroid11, device.Options{
		Services: []host.ServiceUUID{host.UUIDNAP},
	})
	a := device.New(s, med, "Client", addrA, device.Nexus5XAndroid6, device.Options{})
	user := host.NewSimUser(s)
	m.Host.SetUI(user)
	// The phone acts as pairing responder here; it will see a consent
	// dialog only per policy. Accept everything for this functional test.
	user.AcceptUnexpected = true

	var errNAP, errPBAP error
	doneNAP, donePBAP := false, false
	a.Host.ConnectProfile(addrM, host.UUIDNAP, func(err error) { errNAP = err; doneNAP = true })
	s.Run(0)
	a.Host.ConnectProfile(addrM, host.UUIDPBAP, func(err error) { errPBAP = err; donePBAP = true })
	s.Run(0)

	if !doneNAP || errNAP != nil {
		t.Fatalf("NAP profile connect: done=%v err=%v", doneNAP, errNAP)
	}
	if !donePBAP {
		t.Fatal("PBAP profile connect never finished")
	}
	if !errors.Is(errPBAP, host.ErrServiceNotFound) {
		t.Fatalf("PBAP should be unavailable, got %v", errPBAP)
	}
	_ = m
}
