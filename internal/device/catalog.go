package device

import "repro/internal/bt"

// The platform catalog: every device/OS/stack combination evaluated in the
// paper. Bluetooth versions follow the shipped hardware; the distinction
// that matters to the experiments is at the 4.2/5.0 popup-policy boundary
// (paper Fig. 7).

// Phone platforms (Table I rows 1-6, Table II rows 2-7, plus the attacker
// base device and the iPhone).
var (
	Nexus5XAndroid6 = Platform{
		Model: "Nexus 5x", OS: "Android 6", StackName: "Bluedroid",
		Version: bt.V4_2, IOCap: bt.DisplayYesNo, COD: bt.CODMobilePhone,
		Transport: TransportUART, SupportsHCISnoop: true, ResponderJWConsent: true,
	}
	Nexus5XAndroid8 = Platform{
		Model: "Nexus 5x", OS: "Android 8", StackName: "Bluedroid",
		Version: bt.V4_2, IOCap: bt.DisplayYesNo, COD: bt.CODMobilePhone,
		Transport: TransportUART, SupportsHCISnoop: true, ResponderJWConsent: true,
	}
	LGV50Android9 = Platform{
		Model: "LG V50", OS: "Android 9", StackName: "Bluedroid",
		Version: bt.V5_0, IOCap: bt.DisplayYesNo, COD: bt.CODMobilePhone,
		Transport: TransportUART, SupportsHCISnoop: true, ResponderJWConsent: true,
	}
	GalaxyS8Android9 = Platform{
		Model: "Galaxy S8", OS: "Android 9", StackName: "Bluedroid",
		Version: bt.V5_0, IOCap: bt.DisplayYesNo, COD: bt.CODMobilePhone,
		Transport: TransportUART, SupportsHCISnoop: true, ResponderJWConsent: true,
	}
	Pixel2XLAndroid11 = Platform{
		Model: "Pixel 2 XL", OS: "Android 11", StackName: "Bluedroid",
		Version: bt.V5_0, IOCap: bt.DisplayYesNo, COD: bt.CODMobilePhone,
		Transport: TransportUART, SupportsHCISnoop: true, ResponderJWConsent: true,
	}
	LGVELVETAndroid11 = Platform{
		Model: "LG VELVET", OS: "Android 11", StackName: "Bluedroid",
		Version: bt.V5_1, IOCap: bt.DisplayYesNo, COD: bt.CODMobilePhone,
		Transport: TransportUART, SupportsHCISnoop: true, ResponderJWConsent: true,
	}
	GalaxyS21Android11 = Platform{
		Model: "Galaxy s21", OS: "Android 11", StackName: "Bluedroid",
		Version: bt.V5_2, IOCap: bt.DisplayYesNo, COD: bt.CODMobilePhone,
		Transport: TransportUART, SupportsHCISnoop: true, ResponderJWConsent: true,
	}
	IPhoneXsIOS14 = Platform{
		Model: "iPhone Xs", OS: "iOS 14.4.2", StackName: "iOS Bluetooth",
		Version: bt.V5_0, IOCap: bt.DisplayYesNo, COD: bt.CODMobilePhone,
		Transport: TransportUART, SupportsHCISnoop: false, ResponderJWConsent: true,
	}
)

// PC platforms (Table I rows 7-9): host stacks driving a QSENN CSR V4.0
// USB dongle.
var (
	Windows10MSDriver = Platform{
		Model: "QSENN CSR V4.0", OS: "Windows 10", StackName: "Microsoft Bluetooth Driver",
		Version: bt.V4_0, IOCap: bt.DisplayYesNo, COD: bt.CODComputer,
		Transport: TransportUSB, SupportsHCISnoop: false, ResponderJWConsent: true,
	}
	Windows10CSRHarmony = Platform{
		Model: "QSENN CSR V4.0", OS: "Windows 10", StackName: "CSR harmony",
		Version: bt.V4_0, IOCap: bt.DisplayYesNo, COD: bt.CODComputer,
		Transport: TransportUSB, SupportsHCISnoop: false, ResponderJWConsent: true,
	}
	Ubuntu2004BlueZ = Platform{
		Model: "QSENN CSR V4.0", OS: "Ubuntu 20.04", StackName: "BlueZ",
		Version: bt.V5_0, IOCap: bt.DisplayYesNo, COD: bt.CODComputer,
		Transport: TransportUSB, SupportsHCISnoop: true, SnoopRequiresSU: true,
		ResponderJWConsent: true,
	}
)

// Accessory platforms used as the trusted client C and the victim's
// peripherals.
var (
	HandsFreeKit = Platform{
		Model: "Hands-free car kit", OS: "RTOS", StackName: "Vendor stack",
		Version: bt.V4_2, IOCap: bt.NoInputNoOutput, COD: bt.CODHandsFree,
		Transport: TransportUART, SupportsHCISnoop: false,
	}
	Headset = Platform{
		Model: "BT headset", OS: "RTOS", StackName: "Vendor stack",
		Version: bt.V4_2, IOCap: bt.NoInputNoOutput, COD: bt.CODHeadset,
		Transport: TransportUART, SupportsHCISnoop: false,
	}
	AndroidAutomotive = Platform{
		Model: "Android Automotive head unit", OS: "Android 10", StackName: "Bluedroid",
		Version: bt.V5_0, IOCap: bt.NoInputNoOutput, COD: bt.CODHandsFree,
		Transport: TransportUART, SupportsHCISnoop: true, ResponderJWConsent: false,
	}
)

// TableIEntry pairs a platform with its expected Table I outcome.
type TableIEntry struct {
	Platform Platform
	// ViaSnoop / ViaUSB mark which extraction channels the paper
	// demonstrated for this system.
	ViaSnoop bool
	ViaUSB   bool
}

// TableIPlatforms lists the nine systems of Table I in paper order.
func TableIPlatforms() []TableIEntry {
	return []TableIEntry{
		{Platform: Nexus5XAndroid8, ViaSnoop: true},
		{Platform: LGV50Android9, ViaSnoop: true},
		{Platform: GalaxyS8Android9, ViaSnoop: true},
		{Platform: Pixel2XLAndroid11, ViaSnoop: true},
		{Platform: LGVELVETAndroid11, ViaSnoop: true},
		{Platform: GalaxyS21Android11, ViaSnoop: true},
		{Platform: Windows10MSDriver, ViaUSB: true},
		{Platform: Windows10CSRHarmony, ViaUSB: true},
		{Platform: Ubuntu2004BlueZ, ViaSnoop: true, ViaUSB: true},
	}
}

// TableIIPlatforms lists the seven victim devices of Table II in paper
// order, with the success rates the paper measured for the baseline
// (no page blocking) MITM attempt.
type TableIIEntry struct {
	Platform         Platform
	PaperBaselinePct int
	PaperBlockingPct int
}

// TableIIPlatforms returns the Table II victim set.
func TableIIPlatforms() []TableIIEntry {
	return []TableIIEntry{
		{Platform: IPhoneXsIOS14, PaperBaselinePct: 52, PaperBlockingPct: 100},
		{Platform: Nexus5XAndroid8, PaperBaselinePct: 52, PaperBlockingPct: 100},
		{Platform: LGV50Android9, PaperBaselinePct: 57, PaperBlockingPct: 100},
		{Platform: GalaxyS8Android9, PaperBaselinePct: 42, PaperBlockingPct: 100},
		{Platform: Pixel2XLAndroid11, PaperBaselinePct: 60, PaperBlockingPct: 100},
		{Platform: LGVELVETAndroid11, PaperBaselinePct: 60, PaperBlockingPct: 100},
		{Platform: GalaxyS21Android11, PaperBaselinePct: 51, PaperBlockingPct: 100},
	}
}
