package device

import (
	"testing"

	"repro/internal/bt"
)

func TestTableIPlatformsMatchPaper(t *testing.T) {
	entries := TableIPlatforms()
	if len(entries) != 9 {
		t.Fatalf("Table I has 9 systems, got %d", len(entries))
	}
	su := 0
	androids := 0
	usbOnly := 0
	for _, e := range entries {
		p := e.Platform
		if !e.ViaSnoop && !e.ViaUSB {
			t.Errorf("%s/%s: no extraction channel", p.OS, p.StackName)
		}
		if e.ViaSnoop && !p.SupportsHCISnoop {
			t.Errorf("%s/%s: snoop channel without snoop support", p.OS, p.StackName)
		}
		if e.ViaUSB && p.Transport != TransportUSB {
			t.Errorf("%s/%s: USB channel without USB transport", p.OS, p.StackName)
		}
		if p.SnoopRequiresSU {
			su++
		}
		if p.StackName == "Bluedroid" {
			androids++
		}
		if e.ViaUSB && !e.ViaSnoop {
			usbOnly++
		}
	}
	if su != 1 {
		t.Errorf("exactly Ubuntu requires SU; got %d", su)
	}
	if androids != 6 {
		t.Errorf("six Android systems expected, got %d", androids)
	}
	if usbOnly != 2 {
		t.Errorf("the two Windows stacks are USB-only, got %d", usbOnly)
	}
}

func TestTableIIPlatformsMatchPaper(t *testing.T) {
	entries := TableIIPlatforms()
	if len(entries) != 7 {
		t.Fatalf("Table II has 7 devices, got %d", len(entries))
	}
	for _, e := range entries {
		if e.PaperBlockingPct != 100 {
			t.Errorf("%s: paper reports 100%% with page blocking", e.Platform.Model)
		}
		if e.PaperBaselinePct < 42 || e.PaperBaselinePct > 60 {
			t.Errorf("%s: paper baseline %d%% outside 42-60", e.Platform.Model, e.PaperBaselinePct)
		}
		if e.Platform.IOCap != bt.DisplayYesNo {
			t.Errorf("%s: victims are phones with DisplayYesNo", e.Platform.Model)
		}
	}
	// The iPhone provides no HCI dump (the paper analyzed A's log).
	if entries[0].Platform.Model != "iPhone Xs" || entries[0].Platform.SupportsHCISnoop {
		t.Errorf("first row should be the dump-less iPhone: %+v", entries[0].Platform)
	}
}

func TestPopupPolicyBoundary(t *testing.T) {
	// The catalog encodes the paper's v4.2/v5.0 boundary: the Android 8
	// Nexus 5x is pre-5.0 (silent Just Works as initiator), the rest of
	// the Table II Androids are 5.0+.
	if Nexus5XAndroid8.Version.AtLeast5() {
		t.Error("Nexus 5x (BT 4.2) must be pre-5.0")
	}
	for _, p := range []Platform{LGV50Android9, GalaxyS8Android9, Pixel2XLAndroid11, LGVELVETAndroid11, GalaxyS21Android11, IPhoneXsIOS14} {
		if !p.Version.AtLeast5() {
			t.Errorf("%s should be v5.0+", p.Model)
		}
	}
}

func TestTransportKindString(t *testing.T) {
	if TransportUART.String() != "UART" || TransportUSB.String() != "USB" {
		t.Error("transport names")
	}
}

func TestAccessoriesAreNoInputNoOutput(t *testing.T) {
	for _, p := range []Platform{HandsFreeKit, Headset, AndroidAutomotive} {
		if p.IOCap != bt.NoInputNoOutput {
			t.Errorf("%s: accessories are NoInputNoOutput", p.Model)
		}
	}
	if HandsFreeKit.COD != bt.CODHandsFree {
		t.Error("hands-free COD")
	}
}
