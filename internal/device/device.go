// Package device assembles complete simulated Bluetooth devices — host
// stack, controller, HCI transport, and the platform-appropriate capture
// surfaces (HCI snoop log or sniffable USB transport) — and provides the
// catalog of every platform evaluated in the paper (Tables I and II).
package device

import (
	"fmt"
	"time"

	"repro/internal/bt"
	"repro/internal/controller"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/snoop"
	"repro/internal/usbsniff"
)

// TransportKind is the physical HCI interface of a platform.
type TransportKind int

// Transport kinds.
const (
	// TransportUART is an integrated controller (phones): HCI crosses a
	// UART inside the SoC; leakage happens through the host's snoop log.
	TransportUART TransportKind = iota
	// TransportUSB is a pluggable dongle (PCs): HCI crosses a USB bus
	// that an analyzer can sniff.
	TransportUSB
)

func (t TransportKind) String() string {
	if t == TransportUSB {
		return "USB"
	}
	return "UART"
}

// Platform describes a device model/OS/stack combination from the paper's
// evaluation.
type Platform struct {
	Model     string
	OS        string
	StackName string
	Version   bt.Version
	IOCap     bt.IOCapability
	COD       bt.ClassOfDevice
	Transport TransportKind

	// SupportsHCISnoop reports whether the platform offers an HCI dump
	// facility (Android snoop log, bluez-hcidump).
	SupportsHCISnoop bool
	// SnoopRequiresSU reports whether capturing HCI data needs superuser
	// privilege (Table I rightmost column).
	SnoopRequiresSU bool
	// ResponderJWConsent is the pre-5.0 implementation choice of asking
	// the user before responder-side Just Works pairing.
	ResponderJWConsent bool
}

// Device is one assembled simulated device.
type Device struct {
	Name     string
	Platform Platform

	Sched      *sim.Scheduler
	Host       *host.Host
	Controller *controller.Controller
	Transport  *hci.Transport
	Snoop      *snoop.HCIDump    // non-nil when the platform supports HCI dump
	USB        *usbsniff.Sniffer // non-nil when Transport is USB and sniffing is attached
}

// Options tune device assembly.
type Options struct {
	Hooks    host.Hooks
	Services []host.ServiceUUID
	// ForceSnoop attaches a snoop log even on platforms that do not
	// support one (for experiment verification, e.g. the paper analyzes
	// the attacker's log when the victim is an iPhone).
	ForceSnoop bool
	// AttachUSBSniffer taps the USB transport with a bus analyzer.
	AttachUSBSniffer bool
	// AcceptIncoming overrides the default accept policy when set.
	RejectIncoming bool
	// AuthenticateBondedIncoming enables accessory-style authentication of
	// returning bonded peers.
	AuthenticateBondedIncoming bool
	// EnforceRoleCheck turns on the host's §VII-B pairing/connection role
	// mitigation.
	EnforceRoleCheck bool
	// LMPResponseTimeout overrides the controller default (30 s).
	LMPResponseTimeout time.Duration
	// SupervisionTimeout enables link supervision in the controller.
	SupervisionTimeout time.Duration
	// MaxEncKeySize / MinEncKeySize bound LMP encryption key size
	// negotiation (defaults 16 / 1; hardened stacks set min 7).
	MaxEncKeySize int
	MinEncKeySize int
	// HCILatency overrides the HCI transport latency (default 200 µs).
	HCILatency time.Duration
	// SilentBondedRepair suppresses the pairing dialog for already-bonded
	// peers (the Happy-MitM UI blindness).
	SilentBondedRepair bool
	// CTKD enables BLURtooth-style cross-transport LTK derivation on
	// every link key notification.
	CTKD bool
	// FixedPasskey pins the display-side Passkey Entry passkey (a printed
	// label instead of a random draw).
	FixedPasskey *uint32
	// EnhancedPasskey turns on the DH-masked Passkey Entry mitigation.
	EnhancedPasskey bool
}

// New assembles a device on the given medium.
func New(s *sim.Scheduler, med *radio.Medium, name string, addr bt.BDADDR, p Platform, opts Options) *Device {
	lat := opts.HCILatency
	if lat == 0 {
		lat = 200 * time.Microsecond
	}
	tr := hci.NewTransport(s, lat)

	d := &Device{Name: name, Platform: p, Sched: s, Transport: tr}

	if p.SupportsHCISnoop || opts.ForceSnoop {
		d.Snoop = snoop.NewHCIDump()
		tr.AddTap(d.Snoop)
	}
	if p.Transport == TransportUSB && opts.AttachUSBSniffer {
		d.USB = usbsniff.NewSniffer()
		tr.AddTap(d.USB)
	}

	d.Controller = controller.New(s, med, tr, controller.Config{
		Addr:               addr,
		COD:                p.COD,
		Name:               name,
		LMPResponseTimeout: opts.LMPResponseTimeout,
		SupervisionTimeout: opts.SupervisionTimeout,
		MaxEncKeySize:      opts.MaxEncKeySize,
		MinEncKeySize:      opts.MinEncKeySize,
		FixedPasskey:       opts.FixedPasskey,
		EnhancedPasskey:    opts.EnhancedPasskey,
	})

	d.Host = host.New(s, tr, host.Config{
		Name:                       name,
		StackName:                  p.StackName,
		OS:                         p.OS,
		Version:                    p.Version,
		IOCap:                      p.IOCap,
		AcceptIncoming:             !opts.RejectIncoming,
		AuthenticateBondedIncoming: opts.AuthenticateBondedIncoming,
		ResponderJWConsent:         p.ResponderJWConsent,
		EnforceRoleCheck:           opts.EnforceRoleCheck,
		SilentBondedRepair:         opts.SilentBondedRepair,
		CTKD:                       opts.CTKD,
		Discoverable:               true,
		Connectable:                true,
		Services:                   opts.Services,
	}, opts.Hooks)
	d.Host.Start()
	return d
}

// Addr returns the device's current BDADDR.
func (d *Device) Addr() bt.BDADDR { return d.Controller.Addr() }

// SpoofIdentity rewrites the device's BDADDR and class of device, the way
// the paper's attacker edits /persist/bdaddr.txt and bt_target.h (Fig. 8).
func (d *Device) SpoofIdentity(addr bt.BDADDR, cod bt.ClassOfDevice) {
	d.Controller.SetAddr(addr)
	d.Controller.SetCOD(cod)
}

// PullSnoopLog serializes the device's HCI dump, modelling extraction via
// an Android bug report. It fails on platforms without a snoop facility.
func (d *Device) PullSnoopLog() ([]byte, error) {
	if d.Snoop == nil {
		return nil, fmt.Errorf("device %s (%s): no HCI snoop facility", d.Name, d.Platform.Model)
	}
	return d.Snoop.Bytes()
}

// String identifies the device for reports.
func (d *Device) String() string {
	return fmt.Sprintf("%s [%s, %s, %s]", d.Name, d.Platform.Model, d.Platform.OS, d.Addr())
}
