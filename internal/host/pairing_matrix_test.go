package host

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bt"
)

// TestPairingMatrixAllCapabilityCombinations pairs every combination of
// the four IO capabilities on both spec generations and checks that the
// outcome matches the Fig. 7 mapping: the right association model runs,
// keys agree, and the key's authenticated/unauthenticated classification
// follows the model.
func TestPairingMatrixAllCapabilityCombinations(t *testing.T) {
	caps := []bt.IOCapability{bt.DisplayOnly, bt.DisplayYesNo, bt.KeyboardOnly, bt.NoInputNoOutput}
	versions := []bt.Version{bt.V4_2, bt.V5_0}
	seed := int64(9000)
	for _, v := range versions {
		for _, initCap := range caps {
			for _, respCap := range caps {
				seed++
				name := fmt.Sprintf("%s/init=%s/resp=%s", v, initCap, respCap)
				t.Run(name, func(t *testing.T) {
					mapping := bt.Stage1MappingFor(initCap, respCap, v)
					r := newHostRig(seed,
						Config{Version: v, IOCap: initCap, ResponderJWConsent: false},
						Config{Version: v, IOCap: respCap, ResponderJWConsent: false},
						Hooks{}, Hooks{})
					board := &PasskeyBoard{}
					if mapping.Model == bt.PasskeyEntry && !mapping.DisplayInitiator && !mapping.DisplayResponder {
						// Both keyboards: the user invents a value.
						board.Show(271828)
					}
					for _, u := range []*SimUser{r.ua, r.ub} {
						u.AcceptUnexpected = true
						u.Board = board
					}

					var pairErr error
					done := false
					r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
					r.s.RunFor(60 * time.Second)
					if !done {
						t.Fatal("pairing never resolved")
					}
					if pairErr != nil {
						t.Fatalf("pairing failed: %v", pairErr)
					}
					ba := r.ha.Bonds().Get(rigAddrB)
					bb := r.hb.Bonds().Get(rigAddrA)
					if ba == nil || bb == nil || ba.Key != bb.Key {
						t.Fatalf("key agreement broken: %v %v", ba, bb)
					}
					wantAuth := mapping.Authenticated
					gotAuth := ba.KeyType == bt.KeyTypeAuthenticatedP256
					if wantAuth != gotAuth {
						t.Fatalf("model %s: authenticated=%v but key type %s",
							mapping.Model, wantAuth, ba.KeyType)
					}
				})
			}
		}
	}
}
