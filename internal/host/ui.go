package host

import (
	"fmt"
	"time"

	"repro/internal/bt"
	"repro/internal/sim"
)

// ConfirmKind distinguishes the two pairing dialogs of the paper's Fig. 7:
// numeric comparison shows a six-digit value; the Just Works consent
// dialog (mandated on DisplayYesNo devices from v5.0) only asks whether to
// pair.
type ConfirmKind int

// Dialog kinds.
const (
	KindNumericComparison ConfirmKind = iota
	KindJustWorksConsent
)

func (k ConfirmKind) String() string {
	switch k {
	case KindNumericComparison:
		return "numeric-comparison"
	case KindJustWorksConsent:
		return "just-works-consent"
	default:
		// Out-of-range values must stay distinguishable in prompt logs
		// rather than masquerading as a consent dialog.
		return fmt.Sprintf("confirm-kind(%d)", int(k))
	}
}

// UI is the host's channel to the (simulated) user. respond callbacks may
// be invoked asynchronously, later in virtual time.
type UI interface {
	ConfirmPairing(peer bt.BDADDR, value uint32, kind ConfirmKind, respond func(accept bool))
	// DisplayPasskey shows a generated passkey during passkey entry.
	DisplayPasskey(peer bt.BDADDR, passkey uint32)
	// EnterPasskey asks the user to type the passkey shown on the peer.
	EnterPasskey(peer bt.BDADDR, respond func(passkey uint32, ok bool))
}

// PasskeyBoard is the "human channel" of passkey entry: the display-side
// user writes the passkey on it, the keyboard-side user reads it off.
// Share one board between the two simulated users of a pairing.
type PasskeyBoard struct {
	value uint32
	set   bool
}

// Show records a displayed passkey.
func (b *PasskeyBoard) Show(v uint32) { b.value, b.set = v, true }

// Read returns the displayed passkey, if any.
func (b *PasskeyBoard) Read() (uint32, bool) { return b.value, b.set }

// Prompt records one dialog shown to a simulated user.
type Prompt struct {
	At       time.Duration
	Peer     bt.BDADDR
	Value    uint32
	Kind     ConfirmKind
	Expected bool
	Accepted bool
}

// SimUser models the victim-side user of the paper's experiments: they
// accept pairing dialogs that appear while they are deliberately pairing
// (the paper's §V-B2 argument — the popup arrives right after the intended
// pairing initiation, so the victim accepts), and reject dialogs that
// appear out of the blue.
type SimUser struct {
	sched *sim.Scheduler

	// ReactionMin/Max bound the simulated time to tap a dialog.
	ReactionMin, ReactionMax time.Duration
	// AcceptUnexpected makes the user accept dialogs outside any pairing
	// intent (for ablations).
	AcceptUnexpected bool

	// Board is the shared passkey whiteboard; when nil the user cannot
	// complete passkey entry (no value to read, nowhere to show one).
	Board *PasskeyBoard
	// TypedPasskey overrides the board value when set (for wrong-passkey
	// experiments).
	TypedPasskey *uint32

	expecting map[bt.BDADDR]bool
	prompts   []Prompt
}

// NewSimUser returns a user with a 0.5–2 s reaction time.
func NewSimUser(s *sim.Scheduler) *SimUser {
	return &SimUser{
		sched:       s,
		ReactionMin: 500 * time.Millisecond,
		ReactionMax: 2 * time.Second,
		expecting:   make(map[bt.BDADDR]bool),
	}
}

// ExpectPairing marks that the user is deliberately pairing with peer, so
// dialogs about peer will be accepted.
func (u *SimUser) ExpectPairing(peer bt.BDADDR) { u.expecting[peer] = true }

// ClearExpectation withdraws a pairing intent.
func (u *SimUser) ClearExpectation(peer bt.BDADDR) { delete(u.expecting, peer) }

// Prompts returns every dialog the user has seen.
func (u *SimUser) Prompts() []Prompt { return u.prompts }

// ConfirmPairing implements UI.
func (u *SimUser) ConfirmPairing(peer bt.BDADDR, value uint32, kind ConfirmKind, respond func(accept bool)) {
	expected := u.expecting[peer]
	accept := expected || u.AcceptUnexpected
	u.prompts = append(u.prompts, Prompt{
		At:       u.sched.Now(),
		Peer:     peer,
		Value:    value,
		Kind:     kind,
		Expected: expected,
		Accepted: accept,
	})
	delay := u.sched.JitterRange(u.ReactionMin, u.ReactionMax)
	u.sched.Schedule(delay, func() { respond(accept) })
}

// DisplayPasskey implements UI: the user copies the value to the shared
// board so the keyboard-side user can type it.
func (u *SimUser) DisplayPasskey(peer bt.BDADDR, passkey uint32) {
	u.prompts = append(u.prompts, Prompt{
		At: u.sched.Now(), Peer: peer, Value: passkey, Kind: KindNumericComparison,
		Expected: u.expecting[peer], Accepted: true,
	})
	if u.Board != nil {
		u.Board.Show(passkey)
	}
}

// EnterPasskey implements UI: after the reaction delay, the user types
// what the board shows (or their override).
func (u *SimUser) EnterPasskey(peer bt.BDADDR, respond func(passkey uint32, ok bool)) {
	delay := u.sched.JitterRange(u.ReactionMin, u.ReactionMax)
	u.sched.Schedule(delay, func() {
		if u.TypedPasskey != nil {
			respond(*u.TypedPasskey, true)
			return
		}
		if u.Board != nil {
			if v, ok := u.Board.Read(); ok {
				respond(v, true)
				return
			}
		}
		respond(0, false)
	})
}

// AutoUI accepts (or rejects) everything instantly; it models the
// attacker's host, which has no human in the loop.
type AutoUI struct {
	Reject bool
	// Passkey is typed verbatim when passkey entry is requested.
	Passkey uint32
}

// ConfirmPairing implements UI.
func (a AutoUI) ConfirmPairing(_ bt.BDADDR, _ uint32, _ ConfirmKind, respond func(accept bool)) {
	respond(!a.Reject)
}

// DisplayPasskey implements UI (nothing to do — no human watching).
func (AutoUI) DisplayPasskey(bt.BDADDR, uint32) {}

// EnterPasskey implements UI.
func (a AutoUI) EnterPasskey(_ bt.BDADDR, respond func(uint32, bool)) {
	respond(a.Passkey, !a.Reject)
}
