package host

import (
	"testing"
	"time"

	"repro/internal/bt"
)

func legacyCfg(pin string) Config {
	return Config{
		Version:       bt.V2_1,
		IOCap:         bt.NoInputNoOutput,
		LegacyPairing: true,
		PINCode:       pin,
	}
}

func TestLegacyPINPairingBonds(t *testing.T) {
	r := newHostRig(40, legacyCfg("0000"), legacyCfg("0000"), Hooks{}, Hooks{})
	var pairErr error
	done := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.RunFor(10 * time.Second)
	if !done || pairErr != nil {
		t.Fatalf("legacy pairing: done=%v err=%v", done, pairErr)
	}
	ba := r.ha.Bonds().Get(rigAddrB)
	bb := r.hb.Bonds().Get(rigAddrA)
	if ba == nil || bb == nil {
		t.Fatal("missing bonds")
	}
	if ba.Key != bb.Key {
		t.Fatalf("combination keys disagree: %s vs %s", ba.Key, bb.Key)
	}
	if ba.KeyType != bt.KeyTypeCombination {
		t.Fatalf("key type %s, want Combination", ba.KeyType)
	}
}

func TestLegacyPINMismatchFailsAuthentication(t *testing.T) {
	r := newHostRig(41, legacyCfg("0000"), legacyCfg("1234"), Hooks{}, Hooks{})
	var pairErr error
	done := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.RunFor(10 * time.Second)
	if !done {
		t.Fatal("pairing never resolved")
	}
	if pairErr == nil {
		t.Fatal("mismatched PINs must fail the concluding authentication")
	}
	// The failed challenge-response also wipes any half-made bond.
	if r.ha.Bonds().Get(rigAddrB) != nil {
		t.Fatal("failed legacy pairing left a bond on A")
	}
}

func TestLegacyPairingRefusedWithoutPIN(t *testing.T) {
	r := newHostRig(42, legacyCfg("0000"), legacyCfg(""), Hooks{}, Hooks{})
	var pairErr error
	done := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.RunFor(10 * time.Second)
	if !done {
		t.Fatal("pairing never resolved")
	}
	if pairErr == nil {
		t.Fatal("pairing must fail when the responder refuses the PIN request")
	}
}

func TestLegacyRebondReusesKey(t *testing.T) {
	r := newHostRig(43, legacyCfg("9999"), legacyCfg("9999"), Hooks{}, Hooks{})
	done := false
	r.ha.Pair(rigAddrB, func(err error) { done = err == nil })
	r.s.RunFor(10 * time.Second)
	if !done {
		t.Fatal("initial legacy pairing failed")
	}
	key := r.ha.Bonds().Get(rigAddrB).Key
	r.ha.Disconnect(rigAddrB)
	r.s.RunFor(time.Second)

	done = false
	r.ha.Pair(rigAddrB, func(err error) { done = err == nil })
	r.s.RunFor(10 * time.Second)
	if !done {
		t.Fatal("legacy re-authentication failed")
	}
	if r.ha.Bonds().Get(rigAddrB).Key != key {
		t.Fatal("re-authentication must reuse the stored combination key")
	}
}
