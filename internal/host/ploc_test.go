package host

import (
	"testing"
	"time"

	"repro/internal/bt"
)

// PLOC hold semantics (the Fig. 13 postponement) in isolation.

func TestPLOCQueuesAllSubsequentEvents(t *testing.T) {
	// While holding, nothing is processed — including SSP events from the
	// peer — and on release everything processes in arrival order.
	hold := 6 * time.Second
	r := newHostRig(50, dyn(bt.V4_2), dyn(bt.V5_0), Hooks{PLOCHold: hold}, Hooks{})
	r.ha.SetIOCapability(bt.NoInputNoOutput)

	start := r.s.Now()
	r.ha.Connect(rigAddrB, func(*Conn, error) {})
	// B's user pairs through the held link at t≈2 s, well inside the hold.
	r.s.RunFor(2 * time.Second)
	r.ub.ExpectPairing(rigAddrA)
	var pairErr error
	var pairedAt time.Duration
	done := false
	r.hb.Pair(rigAddrA, func(err error) {
		pairErr = err
		pairedAt = r.s.Now() - start
		done = true
	})
	r.s.RunFor(60 * time.Second)

	if !done || pairErr != nil {
		t.Fatalf("pairing through the hold: done=%v err=%v", done, pairErr)
	}
	// The pairing cannot complete before A releases the hold (its IO
	// capability reply is queued behind the ConnectionComplete).
	if pairedAt < hold {
		t.Fatalf("pairing completed at %v, inside the %v hold", pairedAt, hold)
	}
	if r.hb.Bonds().Get(rigAddrA) == nil {
		t.Fatal("no bond after the held pairing")
	}
}

func TestPLOCHoldTriggersOnlyOnOutgoingConnection(t *testing.T) {
	// An *incoming* connection must not trigger the hold: the PoC patch
	// postpones btu_hcif processing for the connection A itself created.
	r := newHostRig(51, dyn(bt.V5_0), nino(), Hooks{PLOCHold: 5 * time.Second}, Hooks{})
	// B connects to A (incoming from A's perspective).
	var conn *Conn
	r.hb.Connect(rigAddrA, func(c *Conn, _ error) { conn = c })
	r.s.RunFor(2 * time.Second)
	if conn == nil {
		t.Fatal("incoming connection blocked by the hold")
	}
	if r.ha.Connection(rigAddrB) == nil {
		t.Fatal("A should have processed the incoming connection immediately")
	}
}

func TestPLOCHoldFiresOnce(t *testing.T) {
	// After the first hold releases, later outgoing connections process
	// normally (holdUsed latches).
	r := newHostRig(52, dyn(bt.V4_2), nino(), Hooks{PLOCHold: 2 * time.Second}, Hooks{})
	start := r.s.Now()
	var firstAt, secondAt time.Duration
	r.ha.Connect(rigAddrB, func(*Conn, error) { firstAt = r.s.Now() - start })
	r.s.RunFor(10 * time.Second)
	r.ha.Disconnect(rigAddrB)
	r.s.RunFor(time.Second)

	mark := r.s.Now()
	r.ha.Connect(rigAddrB, func(*Conn, error) { secondAt = r.s.Now() - mark })
	r.s.RunFor(10 * time.Second)

	if firstAt < 2*time.Second {
		t.Fatalf("first connect must be held: %v", firstAt)
	}
	if secondAt >= time.Second {
		t.Fatalf("second connect must be immediate: %v", secondAt)
	}
}

func TestNoHoldWithoutHook(t *testing.T) {
	r := newHostRig(53, dyn(bt.V4_2), nino(), Hooks{}, Hooks{})
	start := r.s.Now()
	var at time.Duration
	r.ha.Connect(rigAddrB, func(*Conn, error) { at = r.s.Now() - start })
	r.s.RunFor(5 * time.Second)
	if at > time.Second {
		t.Fatalf("connect without the hook should be fast, took %v", at)
	}
}
