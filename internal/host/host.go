package host

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bt"
	"repro/internal/hci"
	"repro/internal/sim"
)

// Config describes a host stack's identity and policy knobs. The policy
// fields encode the implementation differences the paper observes across
// Android/iOS/Windows/Linux stacks.
type Config struct {
	Name      string
	StackName string // "Bluedroid", "BlueZ", "Microsoft Bluetooth Driver", "CSR harmony"
	OS        string // "Android 11", "Windows 10", ...

	Version bt.Version
	IOCap   bt.IOCapability
	AuthReq uint8

	// AcceptIncoming makes the host accept incoming connection requests
	// (connectable devices do).
	AcceptIncoming bool
	// AuthenticateBondedIncoming makes the host start LMP authentication
	// when a bonded peer connects — typical accessory behaviour, and the
	// trigger for step 3 of the link key extraction attack.
	AuthenticateBondedIncoming bool
	// ResponderJWConsent models the pre-5.0 implementation choice of
	// asking the user before silently accepting a Just Works pairing when
	// acting as responder (paper §V-B2).
	ResponderJWConsent bool
	// LegacyPairing disables Secure Simple Pairing on the controller so
	// pairing falls back to the legacy PIN scheme (pre-v2.1 devices).
	LegacyPairing bool
	// PINCode is the fixed PIN answered to HCI_PIN_Code_Request (legacy
	// pairing only); empty means PIN requests are refused.
	PINCode string
	// EnforceRoleCheck enables the paper's §VII-B mitigation: a pairing
	// this host initiated over a connection it did not initiate, against a
	// peer claiming NoInputNoOutput, is dropped before stage 1 completes.
	EnforceRoleCheck bool
	// RequireMITM is Secure-Connections-Only-style policy (cf. Zhang et
	// al. [29] in the paper's related work): any pairing whose association
	// model provides no MITM protection — every Just Works variant — is
	// rejected outright, at the cost of never pairing with IO-less
	// accessories.
	RequireMITM bool
	// SilentBondedRepair models the Happy-MitM-class UI blindness (Classen
	// et al.): a host that already holds a bond for the peer suppresses the
	// pairing consent/comparison dialog on re-pairing and auto-accepts, so
	// the user never sees that the key is being replaced.
	SilentBondedRepair bool
	// CTKD enables BLURtooth-style Cross-Transport Key Derivation: every
	// BR/EDR link key notification also derives an LE LTK into the bond
	// store, unconditionally — including when the new BR/EDR key is weaker
	// than the LTK it overwrites (the CVE-2020-15802 flaw).
	CTKD bool

	Discoverable bool
	Connectable  bool

	// Services are the profile services this host advertises over SDP.
	Services []ServiceUUID
}

// Hooks are the attack patches the paper applies to the bluedroid host
// stack, expressed as configuration.
type Hooks struct {
	// IgnoreLinkKeyRequest drops HCI_Link_Key_Request events unanswered
	// (Fig. 9): the peer's LMP response timer eventually detaches the link
	// without an authentication failure.
	IgnoreLinkKeyRequest bool
	// PLOCHold postpones processing of the HCI_Connection_Complete event
	// for an outgoing connection — and every event after it — for the
	// given duration (Fig. 13), keeping the link in "Physical Layer Only
	// Connection" state.
	PLOCHold time.Duration
}

// Host errors.
var (
	ErrDisconnected    = errors.New("host: link disconnected")
	ErrTimeout         = errors.New("host: operation timed out")
	ErrServiceNotFound = errors.New("host: peer does not advertise service")
	ErrNotConnected    = errors.New("host: no connection to peer")
)

// StatusError wraps a non-success HCI status.
type StatusError struct {
	Op     string
	Status hci.Status
}

func (e *StatusError) Error() string { return fmt.Sprintf("host: %s: %s", e.Op, e.Status) }

// DisconnectRecord logs one observed disconnection, used by attack
// verification (the extraction attack must end with LMP Response Timeout,
// not Authentication Failure).
type DisconnectRecord struct {
	At     time.Duration
	Addr   bt.BDADDR
	Reason hci.Status
}

// Conn is the host's view of one ACL connection.
type Conn struct {
	Handle    bt.ConnHandle
	Addr      bt.BDADDR
	Initiator bool

	Authenticated bool
	Encrypted     bool

	// PairingInitiator records whether this host sent
	// HCI_Authentication_Requested on the link — the role the §VII-B
	// mitigation cross-checks against the connection initiator role.
	PairingInitiator bool
	PeerIOCap        bt.IOCapability
	HavePeerIOCap    bool

	pendingAuth bool
	authWaiters []func(error)
	encWaiters  []func(error)
	sdpWaiters  map[ServiceUUID][]func(bool, error)
	openWaiters map[ServiceUUID][]func(error)
	pullWaiters map[ServiceUUID][]func([]byte, error)
}

// Host is a simulated Bluetooth host stack bound to the host side of an
// HCI transport.
type Host struct {
	sched *sim.Scheduler
	tr    *hci.Transport
	cfg   Config
	hooks Hooks
	bonds *BondStore
	ui    UI

	conns  map[bt.ConnHandle]*Conn
	byAddr map[bt.BDADDR]*Conn

	connectWaiters map[bt.BDADDR][]func(*Conn, error)
	inflightCreate map[bt.BDADDR]bool
	nameWaiters    map[bt.BDADDR][]func(string, error)
	oobReadWaiters []func(OOBPayload, error)
	peerOOB        map[bt.BDADDR]OOBPayload

	inquiryCB      func([]hci.InquiryResponse)
	inquirySeen    map[bt.BDADDR]bool
	inquiryResults []hci.InquiryResponse

	holding  bool
	holdUsed bool
	holdQ    []hci.Packet

	services map[ServiceUUID]bool

	// Disconnects is the host's disconnect log.
	Disconnects []DisconnectRecord
	// PairingEvents records Simple_Pairing_Complete outcomes.
	PairingEvents []hci.SimplePairingComplete
	// ReceivedData accumulates application payloads delivered by peers
	// via SendData.
	ReceivedData [][]byte
	// RoleCheckAlerts records peers whose pairing the §VII-B mitigation
	// dropped.
	RoleCheckAlerts []bt.BDADDR
	// ProfileData holds per-service application data served over PullData
	// (e.g. the phone book for PBAP).
	ProfileData map[ServiceUUID][]byte
}

// New creates a host bound to tr. Call Start to push the initial
// configuration to the controller.
func New(s *sim.Scheduler, tr *hci.Transport, cfg Config, hooks Hooks) *Host {
	h := &Host{
		sched:          s,
		tr:             tr,
		cfg:            cfg,
		hooks:          hooks,
		bonds:          NewBondStore(),
		ui:             AutoUI{},
		conns:          make(map[bt.ConnHandle]*Conn),
		byAddr:         make(map[bt.BDADDR]*Conn),
		connectWaiters: make(map[bt.BDADDR][]func(*Conn, error)),
		inflightCreate: make(map[bt.BDADDR]bool),
		nameWaiters:    make(map[bt.BDADDR][]func(string, error)),
		peerOOB:        make(map[bt.BDADDR]OOBPayload),
		services:       make(map[ServiceUUID]bool),
		ProfileData:    make(map[ServiceUUID][]byte),
	}
	for _, u := range cfg.Services {
		h.services[u] = true
	}
	tr.AttachHost(h)
	return h
}

// Start pushes the host configuration to the controller.
func (h *Host) Start() {
	h.tr.SendCommand(&hci.WriteSimplePairingMode{Enabled: !h.cfg.LegacyPairing})
	if h.cfg.Name != "" {
		h.tr.SendCommand(&hci.WriteLocalName{Name: h.cfg.Name})
	}
	h.pushScanEnable()
}

func (h *Host) pushScanEnable() {
	var se hci.ScanEnable
	if h.cfg.Discoverable {
		se |= hci.ScanInquiryOnly
	}
	if h.cfg.Connectable {
		se |= hci.ScanPageOnly
	}
	h.tr.SendCommand(&hci.WriteScanEnable{ScanEnable: se})
}

// SetUI installs the user model.
func (h *Host) SetUI(ui UI) { h.ui = ui }

// UIModel returns the installed user model.
func (h *Host) UIModel() UI { return h.ui }

// Config returns the host configuration.
func (h *Host) Config() Config { return h.cfg }

// Hooks returns the active attack hooks.
func (h *Host) Hooks() Hooks { return h.hooks }

// SetHooks replaces the attack hooks.
func (h *Host) SetHooks(hk Hooks) { h.hooks = hk }

// SetIOCapability changes the advertised SSP IO capability — step 1 of the
// page blocking attack sets NoInputNoOutput to force Just Works.
func (h *Host) SetIOCapability(c bt.IOCapability) { h.cfg.IOCap = c }

// Bonds exposes the security database.
func (h *Host) Bonds() *BondStore { return h.bonds }

// RegisterService adds a profile service to the SDP database.
func (h *Host) RegisterService(u ServiceUUID) { h.services[u] = true }

// SetScan updates discoverability/connectability at runtime.
func (h *Host) SetScan(discoverable, connectable bool) {
	h.cfg.Discoverable, h.cfg.Connectable = discoverable, connectable
	h.pushScanEnable()
}

// Connection returns the connection to addr, or nil.
func (h *Host) Connection(addr bt.BDADDR) *Conn { return h.byAddr[addr] }

// Connections returns all current connections.
func (h *Host) Connections() []*Conn {
	out := make([]*Conn, 0, len(h.conns))
	for _, c := range h.conns {
		out = append(out, c)
	}
	return out
}

// --- GAP operations ---

// StartInquiry discovers nearby devices for units×1.28 s, delivering
// deduplicated results to cb.
func (h *Host) StartInquiry(units uint8, cb func([]hci.InquiryResponse)) {
	if h.inquiryCB != nil {
		cb(nil)
		return
	}
	h.inquiryCB = cb
	h.inquirySeen = make(map[bt.BDADDR]bool)
	h.inquiryResults = nil
	h.tr.SendCommand(&hci.Inquiry{LAP: hci.GIAC, InquiryLength: units})
}

// RequestRemoteName resolves a peer's user-friendly name via
// HCI_Remote_Name_Request. Name requests need no authentication — another
// pre-pairing information surface, like SDP.
func (h *Host) RequestRemoteName(addr bt.BDADDR, cb func(string, error)) {
	h.nameWaiters[addr] = append(h.nameWaiters[addr], cb)
	if len(h.nameWaiters[addr]) == 1 {
		h.tr.SendCommand(&hci.RemoteNameRequest{Addr: addr})
	}
}

// Connect establishes an ACL connection to addr (paging the device). If a
// connection already exists it is returned immediately — the behaviour the
// page blocking attack turns against the victim.
func (h *Host) Connect(addr bt.BDADDR, cb func(*Conn, error)) {
	if c := h.byAddr[addr]; c != nil {
		cb(c, nil)
		return
	}
	h.connectWaiters[addr] = append(h.connectWaiters[addr], cb)
	if h.inflightCreate[addr] {
		return
	}
	h.inflightCreate[addr] = true
	h.tr.SendCommand(&hci.CreateConnection{Addr: addr, AllowRoleSwitch: 1})
}

// Pair runs the user-visible "pair with device" flow: reuse an existing
// connection if one exists (omitting the page — the vulnerability), else
// connect, then authenticate. cb receives nil when the devices end up
// bonded.
func (h *Host) Pair(addr bt.BDADDR, cb func(error)) {
	h.Connect(addr, func(c *Conn, err error) {
		if err != nil {
			cb(err)
			return
		}
		h.Authenticate(c, cb)
	})
}

// Authenticate runs LMP authentication (and pairing when no key is
// stored) on an existing connection.
func (h *Host) Authenticate(c *Conn, cb func(error)) {
	if c.Authenticated {
		cb(nil)
		return
	}
	c.authWaiters = append(c.authWaiters, cb)
	if c.pendingAuth {
		return
	}
	c.pendingAuth = true
	c.PairingInitiator = true
	h.tr.SendCommand(&hci.AuthenticationRequested{Handle: c.Handle})
}

// Encrypt enables link encryption after authentication.
func (h *Host) Encrypt(c *Conn, cb func(error)) {
	if c.Encrypted {
		cb(nil)
		return
	}
	c.encWaiters = append(c.encWaiters, cb)
	if len(c.encWaiters) == 1 {
		h.tr.SendCommand(&hci.SetConnectionEncryption{Handle: c.Handle, Enable: true})
	}
}

// Disconnect tears down the connection to addr.
func (h *Host) Disconnect(addr bt.BDADDR) {
	c := h.byAddr[addr]
	if c == nil {
		return
	}
	h.tr.SendCommand(&hci.Disconnect{Handle: c.Handle, Reason: hci.StatusRemoteUserTerminated})
}

// ConnectProfile performs the full profile connection flow the paper uses
// to validate extracted keys (§VI-B1): connect, LMP-authenticate (pairing
// if needed), encrypt, locate the service over SDP, and open it.
func (h *Host) ConnectProfile(addr bt.BDADDR, service ServiceUUID, cb func(error)) {
	h.Connect(addr, func(c *Conn, err error) {
		if err != nil {
			cb(err)
			return
		}
		h.Authenticate(c, func(err error) {
			if err != nil {
				cb(err)
				return
			}
			h.Encrypt(c, func(err error) {
				if err != nil {
					cb(err)
					return
				}
				h.sdpQuery(c, service, func(has bool, err error) {
					if err != nil {
						cb(err)
						return
					}
					if !has {
						cb(fmt.Errorf("%w: %s", ErrServiceNotFound, service))
						return
					}
					h.profileOpen(c, service, cb)
				})
			})
		})
	})
}

// --- hci.Endpoint ---

// HandlePacket processes controller-to-host traffic, honouring the PLOC
// hold: once the hold triggers, this event and all subsequent ones are
// buffered for the hold duration, exactly like the blocked btu_hcif
// callback thread in the paper's PoC (Fig. 13).
func (h *Host) HandlePacket(p hci.Packet) {
	if h.holding {
		h.holdQ = append(h.holdQ, p)
		return
	}
	if h.hooks.PLOCHold > 0 && !h.holdUsed && h.isOutgoingConnComplete(p) {
		h.holdUsed = true
		h.holding = true
		h.holdQ = append(h.holdQ, p)
		h.sched.Schedule(h.hooks.PLOCHold, h.releaseHold)
		return
	}
	h.process(p)
}

func (h *Host) isOutgoingConnComplete(p hci.Packet) bool {
	if code, ok := p.EventCode(); !ok || code != hci.EvConnectionComplete {
		return false
	}
	evt, err := hci.ParseEvent(p)
	if err != nil {
		return false
	}
	cc := evt.(*hci.ConnectionComplete)
	return cc.Status == hci.StatusSuccess && h.inflightCreate[cc.Addr]
}

func (h *Host) releaseHold() {
	h.holding = false
	q := h.holdQ
	h.holdQ = nil
	for _, p := range q {
		if h.holding {
			// A nested hold cannot re-trigger (holdUsed), but keep order
			// safe regardless.
			h.holdQ = append(h.holdQ, p)
			continue
		}
		h.process(p)
	}
}

func (h *Host) process(p hci.Packet) {
	switch p.PT {
	case hci.PTEvent:
		evt, err := hci.ParseEvent(p)
		if err != nil {
			return
		}
		h.handleEvent(evt)
	case hci.PTACLData:
		handle, data, ok := hci.ParseACL(p)
		if !ok {
			return
		}
		if c := h.conns[handle]; c != nil {
			h.handleACL(c, data)
		}
	}
}

func (h *Host) handleEvent(evt hci.Event) {
	if h.handleOOBEvents(evt) {
		return
	}
	switch e := evt.(type) {
	case *hci.InquiryResult:
		if h.inquiryCB == nil {
			return
		}
		for _, res := range e.Responses {
			if !h.inquirySeen[res.Addr] {
				h.inquirySeen[res.Addr] = true
				h.inquiryResults = append(h.inquiryResults, res)
			}
		}

	case *hci.InquiryComplete:
		if cb := h.inquiryCB; cb != nil {
			h.inquiryCB = nil
			cb(h.inquiryResults)
		}

	case *hci.RemoteNameRequestComplete:
		cbs := h.nameWaiters[e.Addr]
		delete(h.nameWaiters, e.Addr)
		var err error
		if e.Status != hci.StatusSuccess {
			err = &StatusError{Op: "remote name", Status: e.Status}
		}
		for _, cb := range cbs {
			cb(e.Name, err)
		}

	case *hci.ConnectionRequest:
		if h.cfg.AcceptIncoming {
			h.tr.SendCommand(&hci.AcceptConnectionRequest{Addr: e.Addr, Role: 1})
		} else {
			h.tr.SendCommand(&hci.RejectConnectionRequest{Addr: e.Addr, Reason: hci.StatusConnTerminatedLocally})
		}

	case *hci.ConnectionComplete:
		h.onConnectionComplete(e)

	case *hci.DisconnectionComplete:
		h.onDisconnection(e)

	case *hci.AuthenticationComplete:
		h.onAuthComplete(e)

	case *hci.LinkKeyRequest:
		if h.hooks.IgnoreLinkKeyRequest {
			// Fig. 9 patch: the event is dropped; the peer's LMP response
			// timer will eventually detach the link.
			return
		}
		if b := h.bonds.Get(e.Addr); b != nil {
			h.tr.SendCommand(&hci.LinkKeyRequestReply{Addr: e.Addr, Key: b.Key})
		} else {
			h.tr.SendCommand(&hci.LinkKeyRequestNegativeReply{Addr: e.Addr})
		}

	case *hci.LinkKeyNotification:
		bond := Bond{Addr: e.Addr, Key: e.Key, KeyType: e.KeyType}
		if old := h.bonds.Get(e.Addr); old != nil {
			bond.Name = old.Name
			bond.Services = old.Services
			bond.LTK, bond.HasLTK, bond.LTKAuthenticated = old.LTK, old.HasLTK, old.LTKAuthenticated
		}
		if h.cfg.CTKD {
			// BLURtooth flaw: the derived LTK overwrites whatever was there,
			// with no check that the new transport's key is at least as
			// strong as the LTK it replaces.
			bond.LTK = DeriveLTK(e.Key)
			bond.HasLTK = true
			bond.LTKAuthenticated = e.KeyType == bt.KeyTypeAuthenticatedP256 ||
				e.KeyType == bt.KeyTypeAuthenticatedP192
		}
		h.bonds.Put(bond)

	case *hci.PINCodeRequest:
		if h.cfg.PINCode != "" {
			h.tr.SendCommand(&hci.PINCodeRequestReply{Addr: e.Addr, PIN: []byte(h.cfg.PINCode)})
		} else {
			h.tr.SendCommand(&hci.PINCodeRequestNegativeReply{Addr: e.Addr})
		}

	case *hci.IOCapabilityRequest:
		h.tr.SendCommand(&hci.IOCapabilityRequestReply{
			Addr:             e.Addr,
			Capability:       h.cfg.IOCap,
			OOBDataPresent:   h.hasPeerOOB(e.Addr),
			AuthRequirements: h.cfg.AuthReq,
		})

	case *hci.IOCapabilityResponse:
		if c := h.byAddr[e.Addr]; c != nil {
			c.PeerIOCap = e.Capability
			c.HavePeerIOCap = true
		}

	case *hci.UserConfirmationRequest:
		h.onUserConfirmation(e)

	case *hci.UserPasskeyNotification:
		h.ui.DisplayPasskey(e.Addr, e.Passkey)

	case *hci.UserPasskeyRequest:
		h.ui.EnterPasskey(e.Addr, func(passkey uint32, ok bool) {
			if ok {
				h.tr.SendCommand(&hci.UserPasskeyRequestReply{Addr: e.Addr, Passkey: passkey})
			} else {
				h.tr.SendCommand(&hci.UserPasskeyRequestNegativeReply{Addr: e.Addr})
			}
		})

	case *hci.SimplePairingComplete:
		h.PairingEvents = append(h.PairingEvents, *e)

	case *hci.EncryptionChange:
		if c := h.conns[e.Handle]; c != nil {
			waiters := c.encWaiters
			c.encWaiters = nil
			var err error
			if e.Status != hci.StatusSuccess {
				err = &StatusError{Op: "encryption", Status: e.Status}
			} else {
				c.Encrypted = e.Enabled
			}
			for _, cb := range waiters {
				cb(err)
			}
		}

	case *hci.CommandStatus:
		if e.Status != hci.StatusSuccess && e.CommandOpcode == hci.OpCreateConnection {
			// The controller refused to page (e.g. duplicate connection);
			// fail every pending connect that has no established link.
			for addr, cbs := range h.connectWaiters {
				if h.byAddr[addr] == nil && h.inflightCreate[addr] {
					delete(h.connectWaiters, addr)
					delete(h.inflightCreate, addr)
					for _, cb := range cbs {
						cb(nil, &StatusError{Op: "create connection", Status: e.Status})
					}
				}
			}
		}
	}
}

func (h *Host) onConnectionComplete(e *hci.ConnectionComplete) {
	initiator := h.inflightCreate[e.Addr]
	delete(h.inflightCreate, e.Addr)
	waiters := h.connectWaiters[e.Addr]
	delete(h.connectWaiters, e.Addr)

	if e.Status != hci.StatusSuccess {
		err := &StatusError{Op: "connect", Status: e.Status}
		for _, cb := range waiters {
			cb(nil, err)
		}
		return
	}
	c := &Conn{
		Handle:      e.Handle,
		Addr:        e.Addr,
		Initiator:   initiator,
		sdpWaiters:  make(map[ServiceUUID][]func(bool, error)),
		openWaiters: make(map[ServiceUUID][]func(error)),
		pullWaiters: make(map[ServiceUUID][]func([]byte, error)),
	}
	h.conns[e.Handle] = c
	h.byAddr[e.Addr] = c
	for _, cb := range waiters {
		cb(c, nil)
	}
	if !initiator && h.cfg.AuthenticateBondedIncoming && h.bonds.Get(e.Addr) != nil {
		// Accessory behaviour: authenticate a returning bonded peer
		// immediately (step 3 of the link key extraction attack).
		h.Authenticate(c, func(error) {})
	}
}

func (h *Host) onDisconnection(e *hci.DisconnectionComplete) {
	c := h.conns[e.Handle]
	if c == nil {
		return
	}
	delete(h.conns, e.Handle)
	if h.byAddr[c.Addr] == c {
		delete(h.byAddr, c.Addr)
	}
	h.Disconnects = append(h.Disconnects, DisconnectRecord{At: h.sched.Now(), Addr: c.Addr, Reason: e.Reason})
	err := fmt.Errorf("%w: %s", ErrDisconnected, e.Reason)
	for _, cb := range c.authWaiters {
		cb(err)
	}
	for _, cb := range c.encWaiters {
		cb(err)
	}
	for u, cbs := range c.sdpWaiters {
		delete(c.sdpWaiters, u)
		for _, cb := range cbs {
			cb(false, err)
		}
	}
	for u, cbs := range c.openWaiters {
		delete(c.openWaiters, u)
		for _, cb := range cbs {
			cb(err)
		}
	}
	for u, cbs := range c.pullWaiters {
		delete(c.pullWaiters, u)
		for _, cb := range cbs {
			cb(nil, err)
		}
	}
	c.authWaiters, c.encWaiters = nil, nil
}

func (h *Host) onAuthComplete(e *hci.AuthenticationComplete) {
	c := h.conns[e.Handle]
	if c == nil {
		return
	}
	c.pendingAuth = false
	waiters := c.authWaiters
	c.authWaiters = nil
	var err error
	switch e.Status {
	case hci.StatusSuccess:
		c.Authenticated = true
	case hci.StatusAuthenticationFailure:
		// A failed challenge invalidates the stored key (the behaviour the
		// extraction attack must avoid triggering on the victim).
		h.bonds.Delete(c.Addr)
		err = &StatusError{Op: "authentication", Status: e.Status}
	default:
		err = &StatusError{Op: "authentication", Status: e.Status}
	}
	for _, cb := range waiters {
		cb(err)
	}
}

// onUserConfirmation implements the association policy of Fig. 7 plus the
// implementation-specific behaviours the paper describes in §V-B2.
func (h *Host) onUserConfirmation(e *hci.UserConfirmationRequest) {
	respond := func(accept bool) {
		if accept {
			h.tr.SendCommand(&hci.UserConfirmationRequestReply{Addr: e.Addr})
		} else {
			h.tr.SendCommand(&hci.UserConfirmationRequestNegativeReply{Addr: e.Addr})
		}
	}
	c := h.byAddr[e.Addr]
	if c == nil || !c.HavePeerIOCap {
		respond(false)
		return
	}
	var mitm bt.Stage1Mapping
	if c.PairingInitiator {
		mitm = bt.Stage1MappingFor(h.cfg.IOCap, c.PeerIOCap, h.cfg.Version)
	} else {
		mitm = bt.Stage1MappingFor(c.PeerIOCap, h.cfg.IOCap, h.cfg.Version)
	}
	if h.cfg.RequireMITM && !mitm.Authenticated {
		// Secure-Connections-Only policy: refuse any unauthenticated
		// association model.
		h.RoleCheckAlerts = append(h.RoleCheckAlerts, e.Addr)
		respond(false)
		return
	}
	if h.cfg.EnforceRoleCheck && c.PairingInitiator && !c.Initiator && c.PeerIOCap == bt.NoInputNoOutput {
		// §VII-B mitigation: the page blocking signature — we initiate a
		// pairing over a peer-initiated connection whose initiator claims
		// no IO capability. Drop the pairing.
		h.RoleCheckAlerts = append(h.RoleCheckAlerts, e.Addr)
		respond(false)
		return
	}
	if h.cfg.SilentBondedRepair && h.bonds.Get(e.Addr) != nil {
		// Happy-MitM surface: we already trust this address, so the stack
		// auto-accepts the re-pairing without ever showing a dialog. The
		// user cannot notice that the stored key is about to change.
		respond(true)
		return
	}
	var mapping bt.Stage1Mapping
	if c.PairingInitiator {
		mapping = bt.Stage1MappingFor(h.cfg.IOCap, c.PeerIOCap, h.cfg.Version)
	} else {
		mapping = bt.Stage1MappingFor(c.PeerIOCap, h.cfg.IOCap, h.cfg.Version)
	}
	ownConfirm := mapping.ConfirmResponder
	ownPopup := mapping.PairPopupResponder
	if c.PairingInitiator {
		ownConfirm = mapping.ConfirmInitiator
		ownPopup = mapping.PairPopupInitiator
	}
	switch {
	case h.cfg.IOCap == bt.NoInputNoOutput:
		// No UI to ask; automatic confirmation.
		respond(true)
	case ownConfirm:
		h.ui.ConfirmPairing(e.Addr, e.NumericValue, KindNumericComparison, respond)
	case ownPopup:
		// v5.0+ mandated bare consent dialog (Fig. 7b).
		h.ui.ConfirmPairing(e.Addr, 0, KindJustWorksConsent, respond)
	case mapping.Model == bt.JustWorks && !c.PairingInitiator &&
		h.cfg.ResponderJWConsent && h.cfg.IOCap == bt.DisplayYesNo && !h.cfg.Version.AtLeast5():
		// Pre-5.0 implementation-specific consent when acting as
		// responder, to prevent fully silent pairing.
		h.ui.ConfirmPairing(e.Addr, 0, KindJustWorksConsent, respond)
	default:
		// Pre-5.0 pairing initiators auto-confirm Just Works silently.
		respond(true)
	}
}
