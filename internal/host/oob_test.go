package host

import (
	"testing"
	"time"

	"repro/internal/bt"
)

// exchangeOOB performs the simulated NFC tap in both directions.
func exchangeOOB(t *testing.T, r *hostRig) {
	t.Helper()
	done := 0
	r.ha.ReadLocalOOBData(func(p OOBPayload, err error) {
		if err != nil {
			t.Fatalf("read A OOB: %v", err)
		}
		r.hb.SetPeerOOBData(rigAddrA, p)
		done++
	})
	r.hb.ReadLocalOOBData(func(p OOBPayload, err error) {
		if err != nil {
			t.Fatalf("read B OOB: %v", err)
		}
		r.ha.SetPeerOOBData(rigAddrB, p)
		done++
	})
	r.s.RunFor(time.Second)
	if done != 2 {
		t.Fatal("OOB reads never completed")
	}
}

func TestOOBPairingAuthenticatesWithoutUI(t *testing.T) {
	// Two IO-less devices (which could otherwise only do Just Works) pair
	// over OOB after an NFC tap: no dialogs, authenticated key.
	r := newHostRig(80, nino(), nino(), Hooks{}, Hooks{})
	exchangeOOB(t, r)

	var pairErr error
	done := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.RunFor(30 * time.Second)
	if !done || pairErr != nil {
		t.Fatalf("OOB pairing: done=%v err=%v", done, pairErr)
	}
	ba := r.ha.Bonds().Get(rigAddrB)
	bb := r.hb.Bonds().Get(rigAddrA)
	if ba == nil || bb == nil || ba.Key != bb.Key {
		t.Fatalf("bonds: %v %v", ba, bb)
	}
	if ba.KeyType != bt.KeyTypeAuthenticatedP256 {
		t.Fatalf("OOB must yield an authenticated key, got %s", ba.KeyType)
	}
	if len(r.ua.Prompts()) != 0 || len(r.ub.Prompts()) != 0 {
		t.Fatal("OOB pairing must be dialog-free")
	}
}

func TestOOBPairingRejectsTamperedCommitment(t *testing.T) {
	// A MITM who substitutes the in-band public key cannot match the
	// out-of-band commitment. Simulate by corrupting the payload carried
	// over "NFC".
	r := newHostRig(81, nino(), nino(), Hooks{}, Hooks{})
	exchangeOOB(t, r)
	// Tamper with what A believes about B.
	p := r.ha.peerOOB[rigAddrB]
	p.C[0] ^= 0xFF
	r.ha.SetPeerOOBData(rigAddrB, p)

	var pairErr error
	done := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.RunFor(30 * time.Second)
	if !done {
		t.Fatal("pairing never resolved")
	}
	if pairErr == nil {
		t.Fatal("tampered OOB commitment must fail pairing")
	}
	if r.ha.Bonds().Get(rigAddrB) != nil {
		t.Fatal("no bond on tampered OOB")
	}
}

func TestOOBRequiresBothSides(t *testing.T) {
	// Only A holds B's payload; B has nothing for A. The model falls back
	// to the IO mapping (Just Works for two NINO devices) and still pairs
	// — but with an unauthenticated key.
	r := newHostRig(82, nino(), nino(), Hooks{}, Hooks{})
	done := 0
	r.hb.ReadLocalOOBData(func(p OOBPayload, err error) {
		if err != nil {
			t.Fatalf("read B OOB: %v", err)
		}
		r.ha.SetPeerOOBData(rigAddrB, p)
		done++
	})
	r.s.RunFor(time.Second)
	if done != 1 {
		t.Fatal("OOB read never completed")
	}

	var pairErr error
	finished := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; finished = true })
	r.s.RunFor(30 * time.Second)
	if !finished || pairErr != nil {
		t.Fatalf("one-sided OOB should fall back to Just Works: done=%v err=%v", finished, pairErr)
	}
	if kt := r.ha.Bonds().Get(rigAddrB).KeyType; kt != bt.KeyTypeUnauthenticatedP256 {
		t.Fatalf("fallback key should be unauthenticated, got %s", kt)
	}
}

func TestOOBClearPeerData(t *testing.T) {
	r := newHostRig(83, nino(), nino(), Hooks{}, Hooks{})
	exchangeOOB(t, r)
	r.ha.ClearPeerOOBData(rigAddrB)
	if r.ha.hasPeerOOB(rigAddrB) {
		t.Fatal("clear failed")
	}
	// B still holds A's payload; B would answer OOB, A would not — the
	// exchange degrades to the mapping, pairing still succeeds.
	var pairErr error
	done := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.RunFor(30 * time.Second)
	if !done || pairErr != nil {
		t.Fatalf("post-clear pairing: done=%v err=%v", done, pairErr)
	}
}
