package host

import (
	"errors"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bt"
)

func sampleBond() Bond {
	return Bond{
		Addr:     bt.MustBDADDR("48:90:51:1e:7f:2c"),
		Name:     "VELVET",
		Key:      bt.MustLinkKey("71a70981f30d6af9e20adee8aafe3264"),
		KeyType:  bt.KeyTypeUnauthenticatedP256,
		Services: []ServiceUUID{UUIDPANU, UUIDNAP},
	}
}

func TestBondStoreCRUD(t *testing.T) {
	s := NewBondStore()
	if s.Len() != 0 || s.Get(sampleBond().Addr) != nil {
		t.Fatal("empty store not empty")
	}
	s.Put(sampleBond())
	if s.Len() != 1 {
		t.Fatal("put failed")
	}
	got := s.Get(sampleBond().Addr)
	if got == nil || got.Key != sampleBond().Key || got.Name != "VELVET" {
		t.Fatalf("get: %+v", got)
	}
	// Update preserves a single entry.
	upd := sampleBond()
	upd.Name = "renamed"
	s.Put(upd)
	if s.Len() != 1 || s.Get(upd.Addr).Name != "renamed" {
		t.Fatal("update failed")
	}
	if !s.Delete(upd.Addr) || s.Len() != 0 {
		t.Fatal("delete failed")
	}
	if s.Delete(upd.Addr) {
		t.Fatal("double delete should report false")
	}
}

func TestBondStoreIsolation(t *testing.T) {
	// Mutating the caller's slice after Put must not affect the store.
	s := NewBondStore()
	b := sampleBond()
	s.Put(b)
	b.Services[0] = UUIDPBAP
	if s.Get(b.Addr).Services[0] != UUIDPANU {
		t.Fatal("store aliases caller memory")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	s := NewBondStore()
	s.Put(sampleBond())
	b2 := sampleBond()
	b2.Addr = bt.MustBDADDR("00:1a:7d:da:71:0a")
	b2.Name = "" // nameless bonds are legal
	b2.Services = nil
	s.Put(b2)

	text := s.EncodeConfig()
	if !strings.Contains(text, "[48:90:51:1e:7f:2c]") {
		t.Fatalf("missing section header:\n%s", text)
	}
	if !strings.Contains(text, "LinkKey = 71a70981f30d6af9e20adee8aafe3264") {
		t.Fatalf("missing key line:\n%s", text)
	}
	if !strings.Contains(text, "00001115-0000-1000-8000-00805f9b34fb") {
		t.Fatalf("missing service UUID:\n%s", text)
	}

	s2 := NewBondStore()
	if err := s2.LoadConfig(text); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("round trip lost bonds: %d", s2.Len())
	}
	got := s2.Get(sampleBond().Addr)
	if got.Key != sampleBond().Key || got.KeyType != sampleBond().KeyType {
		t.Fatalf("round trip changed bond: %+v", got)
	}
	if len(got.Services) != 2 || got.Services[0] != UUIDPANU {
		t.Fatalf("services: %v", got.Services)
	}
}

func TestConfigRoundTripProperty(t *testing.T) {
	f := func(addr [6]byte, key [16]byte, ktype uint8, nServices uint8) bool {
		s := NewBondStore()
		b := Bond{Addr: bt.BDADDR(addr), Key: bt.LinkKey(key), KeyType: bt.LinkKeyType(ktype % 9)}
		for i := uint8(0); i < nServices%5; i++ {
			b.Services = append(b.Services, ServiceUUID(0x1100+uint32(i)))
		}
		s.Put(b)
		s2 := NewBondStore()
		if err := s2.LoadConfig(s.EncodeConfig()); err != nil {
			return false
		}
		got := s2.Get(b.Addr)
		if got == nil || got.Key != b.Key || got.KeyType != b.KeyType || len(got.Services) != len(b.Services) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParseConfigPaperExample(t *testing.T) {
	// The literal layout of the paper's Fig. 10.
	text := `[48:90:51:1e:7f:2c]
Name = VELVET
Service = 00001115-0000-1000-8000-00805f9b34fb 00001116-0000-1000-8000-00805f9b34fb
LinkKey = 71a70981f30d6af9e20adee8aafe3264
`
	bonds, err := ParseConfig(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(bonds) != 1 {
		t.Fatalf("bonds: %d", len(bonds))
	}
	b := bonds[0]
	if b.Name != "VELVET" || b.Key.String() != "71a70981f30d6af9e20adee8aafe3264" {
		t.Fatalf("%+v", b)
	}
	if len(b.Services) != 2 || b.Services[0] != UUIDPANU || b.Services[1] != UUIDNAP {
		t.Fatalf("services: %v", b.Services)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []string{
		"[not-an-address]\nLinkKey = 00000000000000000000000000000000\n",
		"[00:00:00:00:00:01\n",
		"LinkKey = 00000000000000000000000000000000\n", // key before section
		"[00:00:00:00:00:01]\nLinkKey = tooshort\n",
		"[00:00:00:00:00:01]\nService = whatisthis\n",
		"[00:00:00:00:00:01]\nLinkKeyType = notanumber\n",
		"[00:00:00:00:00:01]\njustaline\n",
	}
	for _, c := range cases {
		if _, err := ParseConfig(c); !errors.Is(err, ErrBadConfig) {
			t.Errorf("ParseConfig(%q) err = %v, want ErrBadConfig", c, err)
		}
	}
	// Comments and unknown keys are tolerated.
	ok := "# comment\n[00:00:00:00:00:01]\nDevType = 1\nLinkKey = 00000000000000000000000000000001\n"
	if _, err := ParseConfig(ok); err != nil {
		t.Errorf("benign extras rejected: %v", err)
	}
}

func TestServiceUUIDParse(t *testing.T) {
	u, err := ParseServiceUUID("00001116-0000-1000-8000-00805f9b34fb")
	if err != nil || u != UUIDNAP {
		t.Fatalf("full form: %v %v", u, err)
	}
	u, err = ParseServiceUUID("1115")
	if err != nil || u != UUIDPANU {
		t.Fatalf("short form: %v %v", u, err)
	}
	if _, err := ParseServiceUUID("00001116-0000-1000-8000-000000000000"); err == nil {
		t.Fatal("non-base UUID accepted")
	}
	if _, err := ParseServiceUUID("xyz"); err == nil {
		t.Fatal("garbage accepted")
	}
	if UUIDNAP.String() != "00001116-0000-1000-8000-00805f9b34fb" {
		t.Fatalf("String: %s", UUIDNAP)
	}
}

func TestSortedAddrs(t *testing.T) {
	s := NewBondStore()
	s.Put(Bond{Addr: bt.MustBDADDR("cc:00:00:00:00:01")})
	s.Put(Bond{Addr: bt.MustBDADDR("aa:00:00:00:00:01")})
	s.Put(Bond{Addr: bt.MustBDADDR("bb:00:00:00:00:01")})
	addrs := s.SortedAddrs()
	if addrs[0].String() != "aa:00:00:00:00:01" || addrs[2].String() != "cc:00:00:00:00:01" {
		t.Fatalf("order: %v", addrs)
	}
	// List preserves insertion order instead.
	list := s.List()
	if list[0].Addr.String() != "cc:00:00:00:00:01" {
		t.Fatalf("insertion order: %v", list[0].Addr)
	}
}

func TestBondStoreFilePersistence(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bt_config.conf"

	s := NewBondStore()
	s.Put(sampleBond())
	if err := s.SaveConfigFile(path); err != nil {
		t.Fatal(err)
	}

	loaded := NewBondStore()
	if err := loaded.LoadConfigFile(path); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 || loaded.Get(sampleBond().Addr).Key != sampleBond().Key {
		t.Fatalf("round trip: %+v", loaded.List())
	}

	// A missing file is a clean first boot.
	fresh := NewBondStore()
	fresh.Put(sampleBond())
	if err := fresh.LoadConfigFile(dir + "/missing.conf"); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 0 {
		t.Fatal("missing file should reset the store")
	}

	// A corrupt file reports an error.
	if err := os.WriteFile(path, []byte("[zz]\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := NewBondStore().LoadConfigFile(path); err == nil {
		t.Fatal("corrupt file accepted")
	}
}
