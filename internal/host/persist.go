package host

import (
	"errors"
	"fmt"
	"io/fs"
	"os"

	"repro/internal/bt"
)

// On-disk persistence of the security database in the bt_config.conf
// format — the file the paper's attacker edits on the rooted Nexus 5x
// (Fig. 10, '/data/misc/bluedroid/bt_config.conf').

// SaveConfigFile writes the store to path in bt_config.conf format.
func (s *BondStore) SaveConfigFile(path string) error {
	if err := os.WriteFile(path, []byte(s.EncodeConfig()), 0o600); err != nil {
		return fmt.Errorf("host: saving bond store: %w", err)
	}
	return nil
}

// LoadConfigFile replaces the store contents from a bt_config.conf file.
// A missing file loads an empty store (first boot).
func (s *BondStore) LoadConfigFile(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		s.bonds = make(map[bt.BDADDR]*Bond)
		s.order = nil
		return nil
	}
	if err != nil {
		return fmt.Errorf("host: loading bond store: %w", err)
	}
	return s.LoadConfig(string(data))
}
