package host

import "testing"

// FuzzParseConfig must reject malformed bt_config.conf documents without
// panicking, and anything accepted must re-encode and re-parse.
func FuzzParseConfig(f *testing.F) {
	f.Add("[00:11:22:33:44:55]\nLinkKey = 000102030405060708090a0b0c0d0e0f\n")
	f.Add("[zz]\n")
	f.Add("LinkKey = nope")
	f.Fuzz(func(t *testing.T, text string) {
		bonds, err := ParseConfig(text)
		if err != nil {
			return
		}
		s := NewBondStore()
		for _, b := range bonds {
			s.Put(b)
		}
		if _, err := ParseConfig(s.EncodeConfig()); err != nil {
			t.Fatalf("accepted config failed to round-trip: %v", err)
		}
	})
}
