package host

import (
	"errors"
	"testing"
	"time"

	"repro/internal/bt"
	"repro/internal/controller"
	"repro/internal/hci"
	"repro/internal/radio"
	"repro/internal/sim"
)

// hostRig wires two full host+controller stacks over a shared medium.
type hostRig struct {
	s      *sim.Scheduler
	ha, hb *Host
	ua, ub *SimUser
}

var (
	rigAddrA = bt.MustBDADDR("aa:aa:aa:aa:aa:01")
	rigAddrB = bt.MustBDADDR("bb:bb:bb:bb:bb:02")
)

func newHostRig(seed int64, cfgA, cfgB Config, hooksA, hooksB Hooks) *hostRig {
	s := sim.NewScheduler(seed)
	med := radio.NewMedium(s, radio.DefaultConfig())

	build := func(addr bt.BDADDR, cfg Config, hooks Hooks) (*Host, *SimUser) {
		tr := hci.NewTransport(s, 100*time.Microsecond)
		controller.New(s, med, tr, controller.Config{Addr: addr, COD: bt.CODMobilePhone, Name: cfg.Name})
		if cfg.Name == "" {
			cfg.Name = addr.String()
		}
		cfg.Discoverable, cfg.Connectable = true, true
		if !cfg.AcceptIncoming {
			cfg.AcceptIncoming = true
		}
		h := New(s, tr, cfg, hooks)
		h.Start()
		u := NewSimUser(s)
		h.SetUI(u)
		return h, u
	}

	r := &hostRig{s: s}
	r.ha, r.ua = build(rigAddrA, cfgA, hooksA)
	r.hb, r.ub = build(rigAddrB, cfgB, hooksB)
	s.Run(0)
	return r
}

func dyn(v bt.Version) Config {
	return Config{Version: v, IOCap: bt.DisplayYesNo, ResponderJWConsent: true}
}

func nino() Config {
	return Config{Version: bt.V4_2, IOCap: bt.NoInputNoOutput}
}

func TestPairStoresSymmetricBonds(t *testing.T) {
	r := newHostRig(1, dyn(bt.V5_0), nino(), Hooks{}, Hooks{})
	r.ua.ExpectPairing(rigAddrB)
	var pairErr error
	done := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.Run(0)
	if !done || pairErr != nil {
		t.Fatalf("pair: done=%v err=%v", done, pairErr)
	}
	ba := r.ha.Bonds().Get(rigAddrB)
	bb := r.hb.Bonds().Get(rigAddrA)
	if ba == nil || bb == nil || ba.Key != bb.Key {
		t.Fatalf("bonds: %+v %+v", ba, bb)
	}
}

func TestNumericComparisonBothConfirm(t *testing.T) {
	r := newHostRig(2, dyn(bt.V5_0), dyn(bt.V5_0), Hooks{}, Hooks{})
	r.ua.ExpectPairing(rigAddrB)
	r.ub.ExpectPairing(rigAddrA)
	done := false
	r.ha.Pair(rigAddrB, func(err error) {
		if err != nil {
			t.Errorf("pair: %v", err)
		}
		done = true
	})
	r.s.Run(0)
	if !done {
		t.Fatal("pairing never completed")
	}
	// Both DisplayYesNo users saw a numeric dialog with the same value.
	pa, pb := r.ua.Prompts(), r.ub.Prompts()
	if len(pa) != 1 || len(pb) != 1 {
		t.Fatalf("prompts: %d %d", len(pa), len(pb))
	}
	if pa[0].Kind != KindNumericComparison || pb[0].Kind != KindNumericComparison {
		t.Fatalf("kinds: %v %v", pa[0].Kind, pb[0].Kind)
	}
	if pa[0].Value != pb[0].Value {
		t.Fatalf("numeric values differ: %d vs %d", pa[0].Value, pb[0].Value)
	}
	if pa[0].Value >= 1_000_000 {
		t.Fatalf("value must be six digits: %d", pa[0].Value)
	}
}

func TestNumericComparisonRejectionFailsPairing(t *testing.T) {
	r := newHostRig(3, dyn(bt.V5_0), dyn(bt.V5_0), Hooks{}, Hooks{})
	r.ua.ExpectPairing(rigAddrB)
	// B's user does not expect any pairing and rejects the dialog.
	var pairErr error
	done := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.Run(0)
	if !done {
		t.Fatal("pairing never resolved")
	}
	if pairErr == nil {
		t.Fatal("rejected pairing reported success")
	}
	if r.ha.Bonds().Get(rigAddrB) != nil {
		t.Fatal("rejected pairing left a bond")
	}
}

func TestPre50InitiatorSilentJustWorks(t *testing.T) {
	// v4.2 initiator against NoInputNoOutput: no dialog at all.
	r := newHostRig(4, dyn(bt.V4_2), nino(), Hooks{}, Hooks{})
	done := false
	r.ha.Pair(rigAddrB, func(err error) {
		if err != nil {
			t.Errorf("pair: %v", err)
		}
		done = true
	})
	r.s.Run(0)
	if !done {
		t.Fatal("pairing never completed")
	}
	if len(r.ua.Prompts()) != 0 {
		t.Fatalf("4.2 initiator must pair silently, saw %d prompts", len(r.ua.Prompts()))
	}
}

func TestV50InitiatorConsentDialog(t *testing.T) {
	r := newHostRig(5, dyn(bt.V5_0), nino(), Hooks{}, Hooks{})
	r.ua.ExpectPairing(rigAddrB)
	done := false
	r.ha.Pair(rigAddrB, func(err error) { done = err == nil })
	r.s.Run(0)
	if !done {
		t.Fatal("pairing failed")
	}
	prompts := r.ua.Prompts()
	if len(prompts) != 1 || prompts[0].Kind != KindJustWorksConsent {
		t.Fatalf("want one bare consent dialog, got %+v", prompts)
	}
}

func TestResponderJWConsentPre50(t *testing.T) {
	// NINO initiator pairs against a 4.2 DisplayYesNo responder with the
	// implementation-specific consent enabled: the responder's user is
	// asked.
	r := newHostRig(6, nino(), dyn(bt.V4_2), Hooks{}, Hooks{})
	r.ub.AcceptUnexpected = true
	done := false
	r.ha.Pair(rigAddrB, func(err error) { done = err == nil })
	r.s.Run(0)
	if !done {
		t.Fatal("pairing failed")
	}
	prompts := r.ub.Prompts()
	if len(prompts) != 1 || prompts[0].Kind != KindJustWorksConsent {
		t.Fatalf("responder consent missing: %+v", prompts)
	}
}

func TestUnexpectedPairingRejected(t *testing.T) {
	// The victim-user model: dialogs with no pairing intent are rejected.
	r := newHostRig(7, nino(), dyn(bt.V5_0), Hooks{}, Hooks{})
	var pairErr error
	done := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.Run(0)
	if !done || pairErr == nil {
		t.Fatalf("unexpected pairing should fail: done=%v err=%v", done, pairErr)
	}
	prompts := r.ub.Prompts()
	if len(prompts) != 1 || prompts[0].Expected || prompts[0].Accepted {
		t.Fatalf("prompt bookkeeping: %+v", prompts)
	}
}

func TestBondedReauthUsesStoredKey(t *testing.T) {
	r := newHostRig(8, dyn(bt.V4_2), nino(), Hooks{}, Hooks{})
	done := false
	r.ha.Pair(rigAddrB, func(err error) { done = err == nil })
	r.s.Run(0)
	if !done {
		t.Fatal("initial pairing failed")
	}
	r.ha.Disconnect(rigAddrB)
	r.s.Run(0)

	// Corrupt B's stored key: re-auth must now fail with authentication
	// failure and delete A's bond (spec behaviour the paper leans on).
	bad := r.hb.Bonds().Get(rigAddrA)
	bad.Key[0] ^= 0xFF
	r.hb.Bonds().Put(*bad)

	var authErr error
	done = false
	r.ha.Pair(rigAddrB, func(err error) { authErr = err; done = true })
	r.s.Run(0)
	if !done {
		t.Fatal("re-auth never resolved")
	}
	var se *StatusError
	if !errors.As(authErr, &se) || se.Status != hci.StatusAuthenticationFailure {
		t.Fatalf("want authentication failure, got %v", authErr)
	}
	if r.ha.Bonds().Get(rigAddrB) != nil {
		t.Fatal("failed authentication must invalidate the stored key")
	}
}

func TestIgnoreLinkKeyRequestHookStallsAuth(t *testing.T) {
	r := newHostRig(9, dyn(bt.V4_2), nino(), Hooks{}, Hooks{})
	done := false
	r.ha.Pair(rigAddrB, func(err error) { done = err == nil })
	r.s.Run(0)
	if !done {
		t.Fatal("initial pairing failed")
	}
	r.ha.Disconnect(rigAddrB)
	r.s.Run(0)

	// B now ignores link key requests (the Fig. 9 patch on the claimant).
	r.hb.SetHooks(Hooks{IgnoreLinkKeyRequest: true})

	var authErr error
	done = false
	r.ha.Pair(rigAddrB, func(err error) { authErr = err; done = true })
	r.s.RunFor(40 * time.Second)
	if !done {
		t.Fatal("stalled auth never resolved")
	}
	if !errors.Is(authErr, ErrDisconnected) {
		t.Fatalf("want disconnect error, got %v", authErr)
	}
	// The disconnect reason must be the LMP response timeout, and the
	// bond must survive on both sides.
	if len(r.ha.Disconnects) == 0 || r.ha.Disconnects[len(r.ha.Disconnects)-1].Reason != hci.StatusLMPResponseTimeout {
		t.Fatalf("disconnect log: %+v", r.ha.Disconnects)
	}
	if r.ha.Bonds().Get(rigAddrB) == nil || r.hb.Bonds().Get(rigAddrA) == nil {
		t.Fatal("bonds must survive the timeout")
	}
}

func TestPLOCHoldPostponesEvents(t *testing.T) {
	hold := 5 * time.Second
	r := newHostRig(10, dyn(bt.V4_2), nino(), Hooks{PLOCHold: hold}, Hooks{})
	var conn *Conn
	start := r.s.Now()
	var connectedAt time.Duration
	r.ha.Connect(rigAddrB, func(c *Conn, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
		}
		conn = c
		connectedAt = r.s.Now()
	})
	r.s.RunFor(20 * time.Second)
	if conn == nil {
		t.Fatal("connect callback never fired")
	}
	if connectedAt-start < hold {
		t.Fatalf("PLOC released early: %v", connectedAt-start)
	}
	// The link exists at the peer well before the hold releases.
	if r.hb.Connection(rigAddrA) == nil {
		t.Fatal("peer lost the connection")
	}
}

func TestInquiryDedupsSpoofedResponses(t *testing.T) {
	// Two radios with the same BDADDR answer one inquiry; the host must
	// report a single device.
	s := sim.NewScheduler(11)
	med := radio.NewMedium(s, radio.DefaultConfig())
	trM := hci.NewTransport(s, 100*time.Microsecond)
	controller.New(s, med, trM, controller.Config{Addr: rigAddrA})
	m := New(s, trM, Config{Name: "M", Version: bt.V5_0, IOCap: bt.DisplayYesNo, AcceptIncoming: true, Discoverable: true, Connectable: true}, Hooks{})
	m.Start()

	for i := 0; i < 2; i++ {
		tr := hci.NewTransport(s, 100*time.Microsecond)
		controller.New(s, med, tr, controller.Config{Addr: rigAddrB, COD: bt.CODHandsFree})
		h := New(s, tr, Config{Version: bt.V4_2, IOCap: bt.NoInputNoOutput, AcceptIncoming: true, Discoverable: true, Connectable: true}, Hooks{})
		h.Start()
	}
	s.Run(0)

	var got []hci.InquiryResponse
	m.StartInquiry(2, func(rs []hci.InquiryResponse) { got = rs })
	s.Run(0)
	if len(got) != 1 {
		t.Fatalf("want 1 deduplicated device, got %d", len(got))
	}
	if got[0].Addr != rigAddrB {
		t.Fatalf("addr: %v", got[0].Addr)
	}
}

func TestConnectToAbsentPeerFails(t *testing.T) {
	r := newHostRig(12, dyn(bt.V5_0), nino(), Hooks{}, Hooks{})
	var gotErr error
	done := false
	r.ha.Connect(bt.MustBDADDR("77:77:77:77:77:77"), func(_ *Conn, err error) { gotErr = err; done = true })
	r.s.Run(0)
	if !done {
		t.Fatal("connect never resolved")
	}
	var se *StatusError
	if !errors.As(gotErr, &se) || se.Status != hci.StatusPageTimeout {
		t.Fatalf("want page timeout, got %v", gotErr)
	}
}

func TestConnectReusesExistingLink(t *testing.T) {
	r := newHostRig(13, dyn(bt.V5_0), nino(), Hooks{}, Hooks{})
	var first *Conn
	r.ha.Connect(rigAddrB, func(c *Conn, _ error) { first = c })
	r.s.Run(0)
	if first == nil {
		t.Fatal("no connection")
	}
	var second *Conn
	r.ha.Connect(rigAddrB, func(c *Conn, _ error) { second = c })
	if second != first {
		t.Fatal("existing connection must be reused synchronously")
	}
}

func TestProfileConnectTimesOutWhenPeerDies(t *testing.T) {
	r := newHostRig(14, dyn(bt.V4_2), nino(), Hooks{}, Hooks{})
	r.hb.RegisterService(UUIDNAP)
	done := false
	r.ha.Pair(rigAddrB, func(err error) { done = err == nil })
	r.s.Run(0)
	if !done {
		t.Fatal("pairing failed")
	}
	// Tear the peer's link down mid-flight and try an SDP exchange.
	r.hb.Disconnect(rigAddrA)
	r.s.Run(0)
	var profErr error
	resolved := false
	r.ha.ConnectProfile(rigAddrB, UUIDNAP, func(err error) { profErr = err; resolved = true })
	r.s.Run(0)
	if !resolved {
		t.Fatal("profile connect never resolved")
	}
	if profErr != nil {
		// Re-connection should actually succeed here (peer is alive), so
		// a nil error is also fine; the point is resolution either way.
		t.Logf("profile connect resolved with: %v", profErr)
	}
}

func TestServiceRegistration(t *testing.T) {
	r := newHostRig(15, dyn(bt.V4_2), nino(), Hooks{}, Hooks{})
	done := false
	var profErr error
	r.ha.ConnectProfile(rigAddrB, UUIDNAP, func(err error) { profErr = err; done = true })
	r.s.Run(0)
	if !done {
		t.Fatal("never resolved")
	}
	if !errors.Is(profErr, ErrServiceNotFound) {
		t.Fatalf("unregistered service should be rejected: %v", profErr)
	}
	r.ha.Disconnect(rigAddrB)
	r.s.Run(0)
	r.hb.RegisterService(UUIDNAP)
	done = false
	r.ha.ConnectProfile(rigAddrB, UUIDNAP, func(err error) { profErr = err; done = true })
	r.s.Run(0)
	if !done || profErr != nil {
		t.Fatalf("registered service should connect: done=%v err=%v", done, profErr)
	}
	// Both ends authenticated and encrypted along the way.
	if c := r.ha.Connection(rigAddrB); c == nil || !c.Authenticated || !c.Encrypted {
		t.Fatalf("profile link state: %+v", c)
	}
}

func TestDisconnectFailsPendingWaiters(t *testing.T) {
	r := newHostRig(16, dyn(bt.V5_0), nino(), Hooks{IgnoreLinkKeyRequest: false}, Hooks{})
	var conn *Conn
	r.ha.Connect(rigAddrB, func(c *Conn, _ error) { conn = c })
	r.s.Run(0)
	if conn == nil {
		t.Fatal("no connection")
	}
	// Queue an auth waiter, then kill the link before it resolves: the
	// B side never answers because its host hook drops key requests.
	r.hb.SetHooks(Hooks{IgnoreLinkKeyRequest: true})
	// B has no bond anyway; instead stall by disconnecting immediately.
	var authErr error
	resolved := false
	r.ha.Authenticate(conn, func(err error) { authErr = err; resolved = true })
	r.ha.Disconnect(rigAddrB)
	r.s.RunFor(5 * time.Second)
	if !resolved {
		t.Fatal("auth waiter leaked on disconnect")
	}
	if authErr == nil {
		t.Fatal("auth on a dead link must error")
	}
}

func TestSimUserReactionDelay(t *testing.T) {
	s := sim.NewScheduler(17)
	u := NewSimUser(s)
	u.ExpectPairing(rigAddrB)
	var respondedAt time.Duration
	accepted := false
	u.ConfirmPairing(rigAddrB, 123456, KindNumericComparison, func(a bool) {
		accepted = a
		respondedAt = s.Now()
	})
	s.Run(0)
	if !accepted {
		t.Fatal("expected pairing must be accepted")
	}
	if respondedAt < u.ReactionMin || respondedAt > u.ReactionMax {
		t.Fatalf("reaction time %v outside [%v,%v]", respondedAt, u.ReactionMin, u.ReactionMax)
	}
	u.ClearExpectation(rigAddrB)
	u.ConfirmPairing(rigAddrB, 1, KindJustWorksConsent, func(a bool) { accepted = a })
	s.Run(0)
	if accepted {
		t.Fatal("cleared expectation must reject")
	}
}

func TestAutoUI(t *testing.T) {
	ok := false
	AutoUI{}.ConfirmPairing(rigAddrA, 0, KindJustWorksConsent, func(a bool) { ok = a })
	if !ok {
		t.Fatal("AutoUI must accept")
	}
	AutoUI{Reject: true}.ConfirmPairing(rigAddrA, 0, KindJustWorksConsent, func(a bool) { ok = a })
	if ok {
		t.Fatal("rejecting AutoUI must reject")
	}
}

func TestRequireMITMRejectsJustWorks(t *testing.T) {
	cfg := dyn(bt.V5_0)
	cfg.RequireMITM = true
	r := newHostRig(60, cfg, nino(), Hooks{}, Hooks{})
	r.ua.ExpectPairing(rigAddrB)
	var pairErr error
	done := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.RunFor(30 * time.Second)
	if !done {
		t.Fatal("pairing never resolved")
	}
	if pairErr == nil {
		t.Fatal("SCO-mode host must reject Just Works pairing — even legitimate ones")
	}
	if len(r.ha.RoleCheckAlerts) == 0 {
		t.Fatal("rejection should be logged")
	}
}

func TestRequireMITMAllowsNumericComparison(t *testing.T) {
	cfg := dyn(bt.V5_0)
	cfg.RequireMITM = true
	r := newHostRig(61, cfg, dyn(bt.V5_0), Hooks{}, Hooks{})
	r.ua.ExpectPairing(rigAddrB)
	r.ub.ExpectPairing(rigAddrA)
	done := false
	r.ha.Pair(rigAddrB, func(err error) { done = err == nil })
	r.s.RunFor(30 * time.Second)
	if !done {
		t.Fatal("authenticated pairing must pass the MITM policy")
	}
	if r.ha.Bonds().Get(rigAddrB).KeyType != bt.KeyTypeAuthenticatedP256 {
		t.Fatal("expected an authenticated key")
	}
}

func TestHostAccessors(t *testing.T) {
	r := newHostRig(62, dyn(bt.V5_0), nino(), Hooks{IgnoreLinkKeyRequest: true}, Hooks{})
	if r.ha.Config().IOCap != bt.DisplayYesNo {
		t.Error("Config")
	}
	if !r.ha.Hooks().IgnoreLinkKeyRequest {
		t.Error("Hooks")
	}
	if r.ha.UIModel() != r.ua {
		t.Error("UIModel")
	}
	if len(r.ha.Connections()) != 0 {
		t.Error("Connections should start empty")
	}
	se := &StatusError{Op: "x", Status: hci.StatusPageTimeout}
	if se.Error() == "" {
		t.Error("StatusError.Error")
	}
	if KindNumericComparison.String() == "" || KindJustWorksConsent.String() == "" {
		t.Error("ConfirmKind strings")
	}

	// SetScan propagates to the controller: turning page scan off makes
	// the device unreachable.
	r.hb.SetScan(false, false)
	r.s.RunFor(time.Second)
	var gotErr error
	done := false
	r.ha.Connect(rigAddrB, func(_ *Conn, err error) { gotErr = err; done = true })
	r.s.RunFor(10 * time.Second)
	if !done || gotErr == nil {
		t.Fatalf("non-connectable peer should page-timeout: done=%v err=%v", done, gotErr)
	}
}

func TestSendDataAndPing(t *testing.T) {
	r := newHostRig(63, dyn(bt.V4_2), nino(), Hooks{}, Hooks{})
	var conn *Conn
	r.ha.Connect(rigAddrB, func(c *Conn, _ error) { conn = c })
	r.s.RunFor(2 * time.Second)
	if conn == nil {
		t.Fatal("no connection")
	}
	r.ha.SendPing(conn)
	r.ha.SendData(conn, []byte("hello"))
	r.s.RunFor(time.Second)
	if len(r.hb.ReceivedData) != 1 || string(r.hb.ReceivedData[0]) != "hello" {
		t.Fatalf("received: %q", r.hb.ReceivedData)
	}
}

func TestPullDataRequiresEncryption(t *testing.T) {
	r := newHostRig(64, dyn(bt.V4_2), nino(), Hooks{}, Hooks{})
	r.hb.RegisterService(UUIDPBAP)
	r.hb.ProfileData[UUIDPBAP] = []byte("secret phonebook")

	var conn *Conn
	r.ha.Connect(rigAddrB, func(c *Conn, _ error) { conn = c })
	r.s.RunFor(2 * time.Second)

	// Unencrypted pull is refused.
	var pullErr error
	done := false
	r.ha.PullData(conn, UUIDPBAP, func(_ []byte, err error) { pullErr = err; done = true })
	r.s.RunFor(2 * time.Second)
	if !done || pullErr == nil {
		t.Fatalf("unencrypted pull must fail: done=%v err=%v", done, pullErr)
	}

	// After authentication + encryption it succeeds.
	r.ha.Authenticate(conn, func(err error) {
		if err != nil {
			t.Errorf("auth: %v", err)
			return
		}
		r.ha.Encrypt(conn, func(err error) {
			if err != nil {
				t.Errorf("encrypt: %v", err)
			}
		})
	})
	r.s.RunFor(10 * time.Second)
	var got []byte
	done = false
	r.ha.PullData(conn, UUIDPBAP, func(data []byte, err error) {
		if err != nil {
			t.Errorf("pull: %v", err)
		}
		got = data
		done = true
	})
	r.s.RunFor(2 * time.Second)
	if !done || string(got) != "secret phonebook" {
		t.Fatalf("encrypted pull: done=%v got=%q", done, got)
	}
}

func TestRequestRemoteName(t *testing.T) {
	cfgB := nino()
	cfgB.Name = "CarKit 9000"
	r := newHostRig(65, dyn(bt.V5_0), cfgB, Hooks{}, Hooks{})
	// The simulated controller resolves names for connected peers.
	var conn *Conn
	r.ha.Connect(rigAddrB, func(c *Conn, _ error) { conn = c })
	r.s.RunFor(2 * time.Second)
	if conn == nil {
		t.Fatal("no connection")
	}
	var name string
	done := false
	r.ha.RequestRemoteName(rigAddrB, func(n string, err error) {
		if err != nil {
			t.Errorf("name request: %v", err)
		}
		name = n
		done = true
	})
	r.s.RunFor(2 * time.Second)
	if !done || name != "CarKit 9000" {
		t.Fatalf("remote name: done=%v %q", done, name)
	}
}
