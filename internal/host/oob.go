package host

import (
	"repro/internal/bt"
	"repro/internal/hci"
)

// Host-side Out of Band support: reading the local controller's OOB
// payload (to be carried to the peer over NFC), storing a peer's payload
// received the same way, and answering the controller's OOB data request
// during pairing.

// OOBPayload is the (hash, randomizer) pair exchanged out of band.
type OOBPayload struct {
	C [16]byte
	R [16]byte
}

// ReadLocalOOBData fetches this device's OOB payload from the controller.
func (h *Host) ReadLocalOOBData(cb func(OOBPayload, error)) {
	h.oobReadWaiters = append(h.oobReadWaiters, cb)
	if len(h.oobReadWaiters) == 1 {
		h.tr.SendCommand(&hci.ReadLocalOOBData{})
	}
}

// SetPeerOOBData stores a peer's out-of-band payload (the NFC tap).
// Subsequent pairings with addr will advertise OOB data present and run
// the OOB association model when the peer does the same.
func (h *Host) SetPeerOOBData(addr bt.BDADDR, p OOBPayload) {
	h.peerOOB[addr] = p
}

// ClearPeerOOBData forgets a stored payload.
func (h *Host) ClearPeerOOBData(addr bt.BDADDR) { delete(h.peerOOB, addr) }

// hasPeerOOB reports whether OOB data is on file for addr — the
// OOB_Data_Present flag of the IO capability reply.
func (h *Host) hasPeerOOB(addr bt.BDADDR) bool {
	_, ok := h.peerOOB[addr]
	return ok
}

// handleOOBEvents processes the OOB-related controller events; returns
// true when the event was consumed.
func (h *Host) handleOOBEvents(evt hci.Event) bool {
	switch e := evt.(type) {
	case *hci.RemoteOOBDataRequest:
		if p, ok := h.peerOOB[e.Addr]; ok {
			h.tr.SendCommand(&hci.RemoteOOBDataRequestReply{Addr: e.Addr, C: p.C, R: p.R})
		} else {
			h.tr.SendCommand(&hci.RemoteOOBDataRequestNegativeReply{Addr: e.Addr})
		}
		return true

	case *hci.CommandComplete:
		if e.CommandOpcode != hci.OpReadLocalOOBData {
			return false
		}
		waiters := h.oobReadWaiters
		h.oobReadWaiters = nil
		var p OOBPayload
		var err error
		if len(e.ReturnParams) >= 33 && hci.Status(e.ReturnParams[0]) == hci.StatusSuccess {
			copy(p.C[:], e.ReturnParams[1:17])
			copy(p.R[:], e.ReturnParams[17:33])
		} else {
			err = &StatusError{Op: "read local OOB data", Status: hci.StatusUnknownConnectionID}
		}
		for _, cb := range waiters {
			cb(p, err)
		}
		return true
	}
	return false
}
