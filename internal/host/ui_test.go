package host

import "testing"

// TestConfirmKindString pins the dialog-kind labels: the two real kinds
// keep their names, and out-of-range values are reported as such instead
// of being mislabeled as a Just Works consent dialog.
func TestConfirmKindString(t *testing.T) {
	for _, tc := range []struct {
		kind ConfirmKind
		want string
	}{
		{KindNumericComparison, "numeric-comparison"},
		{KindJustWorksConsent, "just-works-consent"},
		{ConfirmKind(2), "confirm-kind(2)"},
		{ConfirmKind(-1), "confirm-kind(-1)"},
	} {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("ConfirmKind(%d).String() = %q, want %q", int(tc.kind), got, tc.want)
		}
	}
}
