package host

import (
	"encoding/binary"
	"time"

	"repro/internal/hci"
)

// A minimal profile layer over ACL data: SDP service search and a profile
// channel open handshake, enough to model the paper's PAN (Bluetooth
// tethering) validation flow and the dummy-traffic keep-alive mentioned
// for PLOC.

// ACL message kinds.
const (
	aclSDPQuery       = 0x01
	aclSDPResponse    = 0x02
	aclProfileOpen    = 0x03
	aclProfileOpenAck = 0x04
	aclPing           = 0x05
	aclUserData       = 0x06
	aclDataPull       = 0x07
	aclDataPullResp   = 0x08
)

// sdpTimeout bounds SDP and profile-open round trips.
const sdpTimeout = 10 * time.Second

func encodeACLMsg(kind byte, uuid ServiceUUID, flag byte) []byte {
	out := make([]byte, 6)
	out[0] = kind
	binary.LittleEndian.PutUint32(out[1:5], uint32(uuid))
	out[5] = flag
	return out
}

func decodeACLMsg(data []byte) (kind byte, uuid ServiceUUID, flag byte, ok bool) {
	if len(data) < 6 {
		return 0, 0, 0, false
	}
	return data[0], ServiceUUID(binary.LittleEndian.Uint32(data[1:5])), data[5], true
}

func (h *Host) sendACL(c *Conn, data []byte) {
	h.tr.Send(hci.EncodeACL(hci.DirHostToController, c.Handle, data))
}

// SendPing emits a dummy ACL frame, refreshing any link supervision timer
// (the paper's "exchanging some dummy data, such as SDP query" keep-alive
// for long PLOC holds).
func (h *Host) SendPing(c *Conn) {
	h.sendACL(c, encodeACLMsg(aclPing, 0, 0))
}

// SendData transfers application payload over the link (e.g. phone book
// entries over PBAP, the sensitive data the paper's attacker is after).
// The peer host appends it to its ReceivedData log.
func (h *Host) SendData(c *Conn, payload []byte) {
	msg := append(encodeACLMsg(aclUserData, 0, 0), payload...)
	h.sendACL(c, msg)
}

// QueryService performs a bare SDP lookup over an existing connection —
// deliberately with no security requirement, per GAP.
func (h *Host) QueryService(c *Conn, service ServiceUUID, cb func(bool, error)) {
	h.sdpQuery(c, service, cb)
}

// OpenProfileRaw attempts a profile channel open without the usual
// authenticate/encrypt preamble; the serving side's GAP enforcement is
// expected to refuse it. Exposed for the security-probe tests and the
// BIAS-style access experiment.
func (h *Host) OpenProfileRaw(c *Conn, service ServiceUUID, cb func(error)) {
	h.profileOpen(c, service, cb)
}

// PullData requests the peer's stored data for a profile (e.g. the phone
// book over PBAP). The serving side answers only on an encrypted link —
// this is the "sensitive Bluetooth data" the paper's attacker is after.
func (h *Host) PullData(c *Conn, service ServiceUUID, cb func([]byte, error)) {
	c.pullWaiters[service] = append(c.pullWaiters[service], cb)
	if len(c.pullWaiters[service]) == 1 {
		h.sendACL(c, encodeACLMsg(aclDataPull, service, 0))
	}
	h.sched.Schedule(sdpTimeout, func() {
		cbs := c.pullWaiters[service]
		if len(cbs) == 0 {
			return
		}
		delete(c.pullWaiters, service)
		for _, cb := range cbs {
			cb(nil, ErrTimeout)
		}
	})
}

// sdpQuery asks the peer whether it advertises service.
func (h *Host) sdpQuery(c *Conn, service ServiceUUID, cb func(bool, error)) {
	c.sdpWaiters[service] = append(c.sdpWaiters[service], cb)
	if len(c.sdpWaiters[service]) == 1 {
		h.sendACL(c, encodeACLMsg(aclSDPQuery, service, 0))
	}
	h.sched.Schedule(sdpTimeout, func() {
		cbs := c.sdpWaiters[service]
		if len(cbs) == 0 {
			return
		}
		delete(c.sdpWaiters, service)
		for _, cb := range cbs {
			cb(false, ErrTimeout)
		}
	})
}

// profileOpen opens a profile channel for service on an authenticated,
// encrypted link.
func (h *Host) profileOpen(c *Conn, service ServiceUUID, cb func(error)) {
	c.openWaiters[service] = append(c.openWaiters[service], cb)
	if len(c.openWaiters[service]) == 1 {
		h.sendACL(c, encodeACLMsg(aclProfileOpen, service, 0))
	}
	h.sched.Schedule(sdpTimeout, func() {
		cbs := c.openWaiters[service]
		if len(cbs) == 0 {
			return
		}
		delete(c.openWaiters, service)
		for _, cb := range cbs {
			cb(ErrTimeout)
		}
	})
}

// handleACL serves the peer's profile traffic.
func (h *Host) handleACL(c *Conn, data []byte) {
	kind, uuid, flag, ok := decodeACLMsg(data)
	if !ok {
		return
	}
	switch kind {
	case aclSDPQuery:
		var has byte
		if h.services[uuid] {
			has = 1
		}
		h.sendACL(c, encodeACLMsg(aclSDPResponse, uuid, has))

	case aclSDPResponse:
		cbs := c.sdpWaiters[uuid]
		delete(c.sdpWaiters, uuid)
		for _, cb := range cbs {
			cb(flag == 1, nil)
		}

	case aclProfileOpen:
		// GAP security enforcement: unlike SDP — which the specification
		// leaves open precisely so devices can browse before pairing
		// (paper §VII-B) — profile channels require a secured link. The
		// gate is link encryption: it is visible to both sides (the
		// responder of an authentication never sees
		// HCI_Authentication_Complete) and it implies a successful
		// challenge-response, since E3 needs the shared key.
		var ok byte
		if h.services[uuid] && c.Encrypted {
			ok = 1
		}
		h.sendACL(c, encodeACLMsg(aclProfileOpenAck, uuid, ok))

	case aclProfileOpenAck:
		cbs := c.openWaiters[uuid]
		delete(c.openWaiters, uuid)
		var err error
		if flag != 1 {
			err = ErrServiceNotFound
		}
		for _, cb := range cbs {
			cb(err)
		}

	case aclPing:
		// Dummy traffic; nothing to do — its arrival already refreshed the
		// peer's supervision timer.

	case aclUserData:
		h.ReceivedData = append(h.ReceivedData, append([]byte(nil), data[6:]...))

	case aclDataPull:
		// Serve profile data only on a secured link for an advertised
		// service; otherwise answer empty (flag 0).
		if h.services[uuid] && c.Encrypted && len(h.ProfileData[uuid]) > 0 {
			msg := append(encodeACLMsg(aclDataPullResp, uuid, 1), h.ProfileData[uuid]...)
			h.sendACL(c, msg)
		} else {
			h.sendACL(c, encodeACLMsg(aclDataPullResp, uuid, 0))
		}

	case aclDataPullResp:
		cbs := c.pullWaiters[uuid]
		delete(c.pullWaiters, uuid)
		var payload []byte
		var err error
		if flag == 1 {
			payload = append([]byte(nil), data[6:]...)
		} else {
			err = ErrServiceNotFound
		}
		for _, cb := range cbs {
			cb(payload, err)
		}
	}
}
