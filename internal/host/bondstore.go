// Package host implements a simulated Bluetooth host stack in the style of
// Android's bluedroid: GAP connection management, the SSP association
// policy (including the version-dependent confirmation popups of the
// paper's Fig. 7), a bond store persisted in the bt_config.conf format,
// simple SDP/PAN profiles, and the hook points corresponding to the
// paper's host-stack patches (ignoring HCI_Link_Key_Request, the PLOC
// event postponement, silent pairing).
package host

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bt"
	"repro/internal/btcrypto"
)

// ServiceUUID is a 32-bit Bluetooth service class identifier (the xxxx in
// 0000xxxx-0000-1000-8000-00805f9b34fb).
type ServiceUUID uint32

// Profile UUIDs used by the reproduction.
const (
	UUIDSerialPort  ServiceUUID = 0x1101
	UUIDHandsFree   ServiceUUID = 0x111E
	UUIDPANU        ServiceUUID = 0x1115 // PAN user — Bluetooth tethering client
	UUIDNAP         ServiceUUID = 0x1116 // network access point — tethering server
	UUIDPBAP        ServiceUUID = 0x112F
	UUIDMessageAcc  ServiceUUID = 0x1132
	UUIDAudioSource ServiceUUID = 0x110A
)

// String renders the full 128-bit base-UUID form used in bt_config.conf.
func (u ServiceUUID) String() string {
	return fmt.Sprintf("%08x-0000-1000-8000-00805f9b34fb", uint32(u))
}

// ParseServiceUUID accepts either the full base-UUID form or a bare hex
// word.
func ParseServiceUUID(s string) (ServiceUUID, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if i := strings.IndexByte(s, '-'); i >= 0 {
		if !strings.HasSuffix(s, "-0000-1000-8000-00805f9b34fb") {
			return 0, fmt.Errorf("host: non-base UUID %q", s)
		}
		s = s[:i]
	}
	var v uint32
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
		return 0, fmt.Errorf("host: bad UUID %q: %w", s, err)
	}
	return ServiceUUID(v), nil
}

// Bond is one remembered pairing: the peer, its link key, and the profile
// services it advertised. It corresponds to one device section of
// bt_config.conf (paper Fig. 10). The LTK fields are the minimal LE-side
// key entry used by the BLURtooth cross-transport derivation scenario.
type Bond struct {
	Addr     bt.BDADDR
	Name     string
	Key      bt.LinkKey
	KeyType  bt.LinkKeyType
	Services []ServiceUUID

	// LTK is the LE Long Term Key derived (or negotiated) for the peer;
	// valid only when HasLTK is set.
	LTK    bt.LinkKey
	HasLTK bool
	// LTKAuthenticated records whether the LTK carries MITM protection —
	// the property BLURtooth-style overwrites silently downgrade.
	LTKAuthenticated bool
}

// ctkdSalt1/2 are the fixed CTKD salts ("tmp1"/"brle" in the Core spec's
// h6-based derivation, collapsed here onto the sim's F2 primitive).
var (
	ctkdSalt1 = [16]byte{'t', 'm', 'p', '1'}
	ctkdSalt2 = [16]byte{'b', 'r', 'l', 'e'}
)

// DeriveLTK converts a BR/EDR link key into an LE LTK the way CTKD does:
// a public one-way derivation both sides can compute from the link key
// alone, so the devices need never pair over LE. Address inputs are fixed
// to zero so the derivation is symmetric between initiator and responder.
func DeriveLTK(key bt.LinkKey) bt.LinkKey {
	return bt.LinkKey(btcrypto.F2(key[:], ctkdSalt1, ctkdSalt2, [6]byte{}, [6]byte{}))
}

// BondStore is the host's security database.
type BondStore struct {
	bonds map[bt.BDADDR]*Bond
	order []bt.BDADDR
}

// NewBondStore returns an empty store.
func NewBondStore() *BondStore {
	return &BondStore{bonds: make(map[bt.BDADDR]*Bond)}
}

// Get returns the bond for addr, or nil.
func (s *BondStore) Get(addr bt.BDADDR) *Bond { return s.bonds[addr] }

// Put inserts or replaces a bond.
func (s *BondStore) Put(b Bond) {
	if _, ok := s.bonds[b.Addr]; !ok {
		s.order = append(s.order, b.Addr)
	}
	cp := b
	cp.Services = append([]ServiceUUID(nil), b.Services...)
	s.bonds[b.Addr] = &cp
}

// Delete removes a bond; deleting an absent bond is a no-op. It returns
// whether a bond was removed.
func (s *BondStore) Delete(addr bt.BDADDR) bool {
	if _, ok := s.bonds[addr]; !ok {
		return false
	}
	delete(s.bonds, addr)
	for i, a := range s.order {
		if a == addr {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return true
}

// List returns bonds in insertion order.
func (s *BondStore) List() []Bond {
	out := make([]Bond, 0, len(s.order))
	for _, a := range s.order {
		out = append(out, *s.bonds[a])
	}
	return out
}

// Len returns the number of stored bonds.
func (s *BondStore) Len() int { return len(s.bonds) }

// EncodeConfig renders the store in the bluedroid bt_config.conf format
// the paper's attacker edits to install fake bonding information.
func (s *BondStore) EncodeConfig() string {
	var b strings.Builder
	for _, bond := range s.List() {
		fmt.Fprintf(&b, "[%s]\n", bond.Addr)
		if bond.Name != "" {
			fmt.Fprintf(&b, "Name = %s\n", bond.Name)
		}
		if len(bond.Services) > 0 {
			svcs := make([]string, len(bond.Services))
			for i, u := range bond.Services {
				svcs[i] = u.String()
			}
			fmt.Fprintf(&b, "Service = %s\n", strings.Join(svcs, " "))
		}
		fmt.Fprintf(&b, "LinkKey = %s\n", bond.Key)
		fmt.Fprintf(&b, "LinkKeyType = %d\n", uint8(bond.KeyType))
		if bond.HasLTK {
			fmt.Fprintf(&b, "LE_KEY_PENC = %s\n", bond.LTK)
			auth := 0
			if bond.LTKAuthenticated {
				auth = 1
			}
			fmt.Fprintf(&b, "LE_KEY_AUTH = %d\n", auth)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ErrBadConfig reports a malformed bt_config.conf document.
var ErrBadConfig = errors.New("host: malformed bt_config.conf")

// ParseConfig parses the bt_config.conf format produced by EncodeConfig
// (and by hand, as the paper's attacker does in Fig. 10).
func ParseConfig(text string) ([]Bond, error) {
	var out []Bond
	var cur *Bond
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("%w: line %d: unterminated section", ErrBadConfig, ln+1)
			}
			addr, err := bt.ParseBDADDR(line[1 : len(line)-1])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadConfig, ln+1, err)
			}
			out = append(out, Bond{Addr: addr})
			cur = &out[len(out)-1]
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok || cur == nil {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadConfig, ln+1, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "Name":
			cur.Name = val
		case "Service":
			for _, f := range strings.Fields(val) {
				u, err := ParseServiceUUID(f)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrBadConfig, ln+1, err)
				}
				cur.Services = append(cur.Services, u)
			}
		case "LinkKey":
			k, err := bt.ParseLinkKey(val)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadConfig, ln+1, err)
			}
			cur.Key = k
		case "LinkKeyType":
			var t uint8
			if _, err := fmt.Sscanf(val, "%d", &t); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadConfig, ln+1, err)
			}
			cur.KeyType = bt.LinkKeyType(t)
		case "LE_KEY_PENC":
			k, err := bt.ParseLinkKey(val)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadConfig, ln+1, err)
			}
			cur.LTK = k
			cur.HasLTK = true
		case "LE_KEY_AUTH":
			var a uint8
			if _, err := fmt.Sscanf(val, "%d", &a); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadConfig, ln+1, err)
			}
			cur.LTKAuthenticated = a != 0
		default:
			// Unknown keys are preserved-by-ignoring, like bluedroid does.
		}
	}
	return out, nil
}

// LoadConfig replaces the store contents with the parsed document.
func (s *BondStore) LoadConfig(text string) error {
	bonds, err := ParseConfig(text)
	if err != nil {
		return err
	}
	s.bonds = make(map[bt.BDADDR]*Bond, len(bonds))
	s.order = s.order[:0]
	for _, b := range bonds {
		s.Put(b)
	}
	return nil
}

// SortedAddrs returns bonded addresses in canonical order, for stable
// reporting.
func (s *BondStore) SortedAddrs() []bt.BDADDR {
	addrs := append([]bt.BDADDR(nil), s.order...)
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].String() < addrs[j].String() })
	return addrs
}
