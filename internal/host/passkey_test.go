package host

import (
	"testing"
	"time"

	"repro/internal/bt"
)

func keyboard(v bt.Version) Config { return Config{Version: v, IOCap: bt.KeyboardOnly} }

func TestPasskeyEntryPairs(t *testing.T) {
	// A keyboard-only device pairs with a phone: the phone displays the
	// passkey, the keyboard user types it (via the shared board).
	r := newHostRig(70, keyboard(bt.V5_0), dyn(bt.V5_0), Hooks{}, Hooks{})
	board := &PasskeyBoard{}
	r.ua.Board = board
	r.ub.Board = board
	r.ua.ExpectPairing(rigAddrB)
	r.ub.ExpectPairing(rigAddrA)

	var pairErr error
	done := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.RunFor(30 * time.Second)
	if !done || pairErr != nil {
		t.Fatalf("passkey pairing: done=%v err=%v", done, pairErr)
	}
	ba := r.ha.Bonds().Get(rigAddrB)
	bb := r.hb.Bonds().Get(rigAddrA)
	if ba == nil || bb == nil || ba.Key != bb.Key {
		t.Fatalf("bonds: %+v %+v", ba, bb)
	}
	// Passkey entry between two IO-capable devices yields an
	// authenticated (MITM-protected) key.
	if ba.KeyType != bt.KeyTypeAuthenticatedP256 {
		t.Fatalf("key type %s, want authenticated P-256", ba.KeyType)
	}
	// The display side saw the passkey; the board holds a 6-digit value.
	v, ok := board.Read()
	if !ok || v >= 1_000_000 {
		t.Fatalf("board: %d %v", v, ok)
	}
}

func TestPasskeyEntryWrongKeyFails(t *testing.T) {
	r := newHostRig(71, keyboard(bt.V5_0), dyn(bt.V5_0), Hooks{}, Hooks{})
	board := &PasskeyBoard{}
	r.ub.Board = board
	// The keyboard user fat-fingers a fixed wrong value.
	wrong := uint32(999_999)
	r.ua.TypedPasskey = &wrong
	r.ua.ExpectPairing(rigAddrB)
	r.ub.ExpectPairing(rigAddrA)

	var pairErr error
	done := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.RunFor(30 * time.Second)
	if !done {
		t.Fatal("pairing never resolved")
	}
	if pairErr == nil {
		// The displayed key could coincide with 999999 only with
		// probability 1e-6; treat success as failure.
		if v, _ := board.Read(); v != wrong {
			t.Fatal("wrong passkey must fail the commitment rounds")
		}
	}
	if pairErr != nil && r.ha.Bonds().Get(rigAddrB) != nil {
		t.Fatal("failed passkey pairing left a bond")
	}
}

func TestPasskeyEntryNoBoardFails(t *testing.T) {
	// Keyboard user with nothing to read: the host answers the passkey
	// request negatively and pairing fails cleanly.
	r := newHostRig(72, keyboard(bt.V5_0), dyn(bt.V5_0), Hooks{}, Hooks{})
	r.ua.ExpectPairing(rigAddrB)
	var pairErr error
	done := false
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.RunFor(30 * time.Second)
	if !done {
		t.Fatal("pairing never resolved")
	}
	if pairErr == nil {
		t.Fatal("pairing without a passkey source must fail")
	}
}

func TestPasskeyEntryBothKeyboards(t *testing.T) {
	// Two keyboards: both users type the same value.
	r := newHostRig(73, keyboard(bt.V4_2), keyboard(bt.V4_2), Hooks{}, Hooks{})
	same := uint32(428913)
	r.ua.TypedPasskey = &same
	r.ub.TypedPasskey = &same
	done := false
	var pairErr error
	r.ha.Pair(rigAddrB, func(err error) { pairErr = err; done = true })
	r.s.RunFor(30 * time.Second)
	if !done || pairErr != nil {
		t.Fatalf("both-keyboard passkey pairing: done=%v err=%v", done, pairErr)
	}
}
