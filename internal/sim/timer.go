package sim

import "time"

// Timer is a restartable one-shot timer bound to a Scheduler. Its zero value
// is unusable; create timers with NewTimer. Timers are the building block
// for protocol timeouts (LMP response timeout, page timeout, PLOC hold).
type Timer struct {
	s       *Scheduler
	fn      func()
	pending *Event
}

// NewTimer returns a stopped timer that invokes fn on expiry.
func NewTimer(s *Scheduler, fn func()) *Timer {
	if s == nil || fn == nil {
		panic("sim: NewTimer requires a scheduler and callback")
	}
	return &Timer{s: s, fn: fn}
}

// Start arms the timer to fire after d. Starting a running timer restarts it.
func (t *Timer) Start(d time.Duration) {
	t.Stop()
	t.pending = t.s.Schedule(d, func() {
		t.pending = nil
		t.fn()
	})
}

// Stop disarms the timer. Stopping a stopped timer is a no-op.
func (t *Timer) Stop() {
	if t.pending != nil {
		t.s.Cancel(t.pending)
		t.pending = nil
	}
}

// Running reports whether the timer is armed.
func (t *Timer) Running() bool { return t.pending != nil }
