// Package sim provides a deterministic discrete-event simulation kernel.
//
// All BLAP components run on virtual time: radios, controllers, and host
// stacks schedule callbacks on a Scheduler instead of sleeping on the wall
// clock. Determinism comes from two properties: events that fire at the
// same virtual instant are executed in scheduling order, and all randomness
// flows from a single seeded source owned by the scheduler.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. The zero Event is invalid.
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	index  int // heap index; -1 once popped or cancelled
	cancel bool
}

// Cancelled reports whether the event was cancelled before it fired.
func (e *Event) Cancelled() bool { return e != nil && e.cancel }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event executor with virtual time.
// It is not safe for concurrent use; the simulation model is strictly
// sequential, which is what makes runs reproducible.
type Scheduler struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	rng    *rand.Rand
	nsteps uint64
}

// NewScheduler returns a scheduler whose random source is seeded with seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand exposes the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Steps returns the number of events executed so far.
func (s *Scheduler) Steps() uint64 { return s.nsteps }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero. The returned Event may be passed to Cancel.
func (s *Scheduler) Schedule(delay time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule called with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	s.seq++
	e := &Event{at: s.now + delay, seq: s.seq, fn: fn}
	heap.Push(&s.queue, e)
	return e
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.cancel || e.index < 0 {
		if e != nil {
			e.cancel = true
		}
		return
	}
	e.cancel = true
	heap.Remove(&s.queue, e.index)
	e.index = -1
}

// Step executes the earliest pending event, advancing virtual time to its
// deadline. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		if e.at < s.now {
			panic(fmt.Sprintf("sim: event scheduled in the past: %v < %v", e.at, s.now))
		}
		s.now = e.at
		s.nsteps++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the event budget is
// exhausted, returning the number of events executed. A budget of 0 means
// unlimited; the kernel panics after an internal hard cap to surface
// accidental livelock in tests.
func (s *Scheduler) Run(budget uint64) uint64 {
	const hardCap = 50_000_000
	var n uint64
	for s.Step() {
		n++
		if budget != 0 && n >= budget {
			break
		}
		if n >= hardCap {
			panic("sim: event hard cap exceeded; simulation livelock?")
		}
	}
	return n
}

// RunUntil executes events with deadlines at or before t (absolute virtual
// time), then advances the clock to t even if the queue drained early.
func (s *Scheduler) RunUntil(t time.Duration) {
	for s.queue.Len() > 0 {
		next := s.peek()
		if next.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events for d of virtual time starting now.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// Pending returns the number of events waiting to fire.
func (s *Scheduler) Pending() int { return s.queue.Len() }

func (s *Scheduler) peek() *Event {
	for s.queue.Len() > 0 {
		e := s.queue[0]
		if !e.cancel {
			return e
		}
		heap.Pop(&s.queue)
	}
	return nil
}

// Jitter returns a uniformly distributed duration in [0, max). It returns 0
// when max <= 0.
func (s *Scheduler) Jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(s.rng.Int63n(int64(max)))
}

// JitterRange returns a uniformly distributed duration in [lo, hi). It
// returns lo when hi <= lo.
func (s *Scheduler) JitterRange(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(s.rng.Int63n(int64(hi-lo)))
}
