package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("wrong order: %v", got)
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("clock = %v, want 3ms", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events must run in scheduling order: %v", got)
		}
	}
}

func TestNegativeDelayIsImmediate(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	s.Schedule(-5*time.Second, func() { ran = true })
	s.Step()
	if !ran || s.Now() != 0 {
		t.Fatalf("negative delay should run at t=0; ran=%v now=%v", ran, s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	e := s.Schedule(time.Millisecond, func() { ran = true })
	s.Cancel(e)
	s.Run(0)
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Fatal("event should report cancelled")
	}
	// Double cancel and cancel-after-fire are no-ops.
	s.Cancel(e)
	e2 := s.Schedule(time.Millisecond, func() {})
	s.Run(0)
	s.Cancel(e2)
	s.Cancel(nil)
}

func TestNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 5 {
			s.Schedule(time.Millisecond, rec)
		}
	}
	s.Schedule(0, rec)
	n := s.Run(0)
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if n != 5 {
		t.Fatalf("executed %d events, want 5", n)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	s.Schedule(10*time.Millisecond, func() { ran = true })
	s.RunUntil(5 * time.Millisecond)
	if ran {
		t.Fatal("future event ran early")
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock should advance to the horizon, got %v", s.Now())
	}
	s.RunFor(5 * time.Millisecond)
	if !ran {
		t.Fatal("event inside horizon did not run")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestRunBudget(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	var loop func()
	loop = func() {
		count++
		s.Schedule(time.Microsecond, loop)
	}
	s.Schedule(0, loop)
	n := s.Run(100)
	if n != 100 || count != 100 {
		t.Fatalf("budget ignored: n=%d count=%d", n, count)
	}
}

func TestJitterDeterminismAndBounds(t *testing.T) {
	s1 := NewScheduler(42)
	s2 := NewScheduler(42)
	for i := 0; i < 1000; i++ {
		a := s1.JitterRange(time.Millisecond, 10*time.Millisecond)
		b := s2.JitterRange(time.Millisecond, 10*time.Millisecond)
		if a != b {
			t.Fatal("same seed must give same jitter stream")
		}
		if a < time.Millisecond || a >= 10*time.Millisecond {
			t.Fatalf("jitter %v out of range", a)
		}
	}
	if s1.Jitter(0) != 0 || s1.Jitter(-time.Second) != 0 {
		t.Fatal("non-positive max must yield 0")
	}
	if s1.JitterRange(5, 5) != 5 {
		t.Fatal("empty range returns lo")
	}
}

func TestScheduleNilPanics(t *testing.T) {
	s := NewScheduler(1)
	defer func() {
		if recover() == nil {
			t.Fatal("nil fn must panic")
		}
	}()
	s.Schedule(0, nil)
}

func TestTimerRestartAndStop(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Start(10 * time.Millisecond)
	s.RunFor(5 * time.Millisecond)
	tm.Start(10 * time.Millisecond) // restart pushes deadline out
	s.RunFor(7 * time.Millisecond)
	if fired != 0 {
		t.Fatal("restarted timer fired early")
	}
	s.RunFor(5 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired=%d, want 1", fired)
	}
	if tm.Running() {
		t.Fatal("fired timer should not report running")
	}
	tm.Start(time.Millisecond)
	tm.Stop()
	s.RunFor(time.Second)
	if fired != 1 {
		t.Fatal("stopped timer fired")
	}
	tm.Stop() // double stop is a no-op
}

func TestStepsCounter(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 7; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run(0)
	if s.Steps() != 7 {
		t.Fatalf("steps=%d", s.Steps())
	}
}
