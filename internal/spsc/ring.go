// Package spsc provides a bounded single-producer single-consumer ring:
// the handoff primitive between the sentinel's per-stream reader
// goroutine (which owns the socket and the batch scanner) and its
// detector goroutine (which owns the session state and the event
// stream). Exactly one goroutine may push and exactly one may pop; the
// ring enforces nothing and corrupts silently if that contract is
// broken, which is why it lives behind the sentinel rather than in a
// general toolbox.
//
// That contract is also why the ring stops at the stream boundary in
// the sentinel's sharded fan-in: within one stream the reader→detector
// handoff is genuinely single-producer single-consumer, so batches ride
// rings; but an event shard aggregates events from every stream pinned
// to it — many producers, one shard writer — so the shard queues are
// bounded channels (MPSC), not rings. Use this package only where both
// singulars hold.
//
// The fast path is two atomic loads and one atomic store per operation
// — no locks, no channel send. Channels appear only on the blocking
// edges (full ring, empty ring), each a capacity-1 notification that
// collapses any number of signals into one wakeup.
package spsc

import "sync/atomic"

// Ring is a bounded SPSC queue of T. The zero value is not usable; call
// New.
type Ring[T any] struct {
	buf  []T
	mask uint64

	// head is the next position to pop (advanced only by the consumer);
	// tail the next to push (advanced only by the producer). Both grow
	// without wrapping — position modulo len(buf) is the slot — so
	// tail-head is always the queue depth. The atomic store after a slot
	// write is the release edge that publishes the element; the matching
	// load is the acquire.
	head atomic.Uint64
	tail atomic.Uint64

	// notEmpty wakes a consumer blocked in Pop; notFull a producer
	// blocked in Push. Capacity 1: posting to an already-signalled ring
	// is a no-op, so signalling is cheap and never blocks.
	notEmpty chan struct{}
	notFull  chan struct{}

	// done is closed by Close; it both unblocks waiters and, once the
	// ring drains, turns Pop into a terminal false.
	done   chan struct{}
	closed atomic.Bool
}

// New returns a ring holding at least capacity elements (rounded up to
// a power of two, minimum 2).
func New[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{
		buf:      make([]T, n),
		mask:     uint64(n - 1),
		notEmpty: make(chan struct{}, 1),
		notFull:  make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// TryPush enqueues v if there is room, reporting whether it did. Safe
// only from the single producer.
func (r *Ring[T]) TryPush(v T) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	select {
	case r.notEmpty <- struct{}{}:
	default:
	}
	return true
}

// Push enqueues v, blocking while the ring is full. It returns false
// without enqueueing if the ring is closed (before or while blocked).
func (r *Ring[T]) Push(v T) bool {
	for {
		if r.closed.Load() {
			return false
		}
		if r.TryPush(v) {
			return true
		}
		select {
		case <-r.notFull:
		case <-r.done:
			return false
		}
	}
}

// TryPop dequeues the oldest element if one is buffered. The vacated
// slot is zeroed so the ring never pins popped elements.
func (r *Ring[T]) TryPop() (T, bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		var zero T
		return zero, false
	}
	v := r.buf[head&r.mask]
	var zero T
	r.buf[head&r.mask] = zero
	r.head.Store(head + 1)
	select {
	case r.notFull <- struct{}{}:
	default:
	}
	return v, true
}

// Pop dequeues the oldest element, blocking while the ring is empty. It
// returns false only when the ring is closed and fully drained — every
// element pushed before Close is still delivered.
func (r *Ring[T]) Pop() (T, bool) {
	for {
		if v, ok := r.TryPop(); ok {
			return v, true
		}
		select {
		case <-r.notEmpty:
		case <-r.done:
			// Closed: one final drain pass, since the producer's last
			// push may have raced the close signal.
			return r.TryPop()
		}
	}
}

// Close marks the ring closed, waking blocked producers and consumers.
// Elements already buffered remain poppable; further pushes fail. Close
// is idempotent. The producer should close, after its final Push — a
// consumer-side Close racing an in-flight Push may drop that element.
func (r *Ring[T]) Close() {
	if r.closed.CompareAndSwap(false, true) {
		close(r.done)
	}
}
