package spsc

import (
	"sync"
	"testing"
	"time"
)

func TestFIFOAndCapacity(t *testing.T) {
	r := New[int](3) // rounds up to 4
	if r.Cap() != 4 {
		t.Fatalf("cap %d, want 4", r.Cap())
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("push accepted on a full ring")
	}
	for i := 0; i < 4; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
}

func TestCloseDrainsThenStops(t *testing.T) {
	r := New[int](4)
	for i := 0; i < 3; i++ {
		r.TryPush(i)
	}
	r.Close()
	if r.Push(9) {
		t.Fatal("push succeeded after close")
	}
	for i := 0; i < 3; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("drain %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop yielded after drain of a closed ring")
	}
}

func TestCloseWakesBlockedPop(t *testing.T) {
	r := New[int](2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := r.Pop(); ok {
			t.Error("blocked pop returned a value from an empty closed ring")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Pop stayed blocked after Close")
	}
}

func TestCloseWakesBlockedPush(t *testing.T) {
	r := New[int](2)
	r.TryPush(1)
	r.TryPush(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if r.Push(3) {
			t.Error("blocked push succeeded on a closed ring")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Push stayed blocked after Close")
	}
}

// TestStress pumps a counter through a small ring between two
// goroutines; under -race this doubles as the memory-model check for
// the publish/consume edges (the slot write is ordered by the tail
// store, the slot read by the tail load).
func TestStress(t *testing.T) {
	const n = 200_000
	r := New[int](8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if !r.Push(i) {
				t.Error("push failed mid-stream")
				return
			}
		}
		r.Close()
	}()
	for i := 0; i < n; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("ring yielded beyond the close")
	}
	wg.Wait()
}

// TestStressPointer moves heap objects across the ring under -race: the
// consumer dereferences what the producer allocated, so any missing
// happens-before edge trips the detector.
func TestStressPointer(t *testing.T) {
	const n = 100_000
	type box struct{ v int }
	r := New[*box](4)
	go func() {
		for i := 0; i < n; i++ {
			r.Push(&box{v: i})
		}
		r.Close()
	}()
	for i := 0; i < n; i++ {
		b, ok := r.Pop()
		if !ok || b.v != i {
			t.Fatalf("pop %d: got %+v ok=%v", i, b, ok)
		}
	}
}
