package snoop

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/hci"
)

// CaptureBase is the wall-clock instant corresponding to virtual time zero
// in capture timestamps. Fixed for reproducibility; it is the date of the
// paper's responsible disclosure note.
var CaptureBase = time.Date(2022, time.April, 5, 0, 0, 0, 0, time.UTC)

// HCIDump is an hci.Tap that records all transport traffic as btsnoop
// records, mirroring Android's "Bluetooth HCI snoop log" and BlueZ's
// hcidump. Records accumulate in memory and can be serialized with Bytes,
// the way the paper's attacker pulls the log via an Android bug report.
//
// An optional Filter rewrites records before they are stored; the
// link-key-filtering mitigation of §VII-A is implemented that way.
type HCIDump struct {
	// Filter, when non-nil, may rewrite or suppress a record. Returning
	// ok=false drops the record (counted in CumulativeDrops).
	Filter func(rec Record) (out Record, ok bool)

	records []Record
	drops   uint32
	enabled bool
}

// NewHCIDump returns an enabled dump module.
func NewHCIDump() *HCIDump { return &HCIDump{enabled: true} }

// SetEnabled toggles background logging, like the developer-options
// switch on Android.
func (d *HCIDump) SetEnabled(on bool) { d.enabled = on }

// Enabled reports whether the dump is recording.
func (d *HCIDump) Enabled() bool { return d.enabled }

// Observe implements hci.Tap.
func (d *HCIDump) Observe(at time.Duration, dir hci.Direction, wire []byte) {
	if !d.enabled || len(wire) == 0 {
		return
	}
	var flags uint32
	if dir == hci.DirControllerToHost {
		flags |= FlagDirectionReceived
	}
	switch hci.PacketType(wire[0]) {
	case hci.PTCommand, hci.PTEvent:
		flags |= FlagCommandEvent
	}
	rec := Record{
		OriginalLength:  uint32(len(wire)),
		Flags:           flags,
		CumulativeDrops: d.drops,
		Timestamp:       CaptureBase.Add(at),
		Data:            append([]byte(nil), wire...),
	}
	if d.Filter != nil {
		out, ok := d.Filter(rec)
		if !ok {
			d.drops++
			return
		}
		rec = out
	}
	d.records = append(d.records, rec)
}

// Records returns the captured records in order.
func (d *HCIDump) Records() []Record { return d.records }

// Len returns the number of captured records.
func (d *HCIDump) Len() int { return len(d.records) }

// Reset discards all captured records.
func (d *HCIDump) Reset() { d.records = nil; d.drops = 0 }

// WriteTo streams the capture to w as a complete btsnoop file without
// building an intermediate byte slice, implementing io.WriterTo.
func (d *HCIDump) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	sw := NewWriter(cw)
	for _, rec := range d.records {
		if err := sw.WriteRecord(rec); err != nil {
			return cw.n, fmt.Errorf("snoop: serializing dump: %w", err)
		}
	}
	if err := sw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Bytes serializes the capture as a complete btsnoop file.
func (d *HCIDump) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RandomizeLinkKeyFilter is the §VII-A alternative mitigation ("or
// replace the link key with a random value"): key-bearing packets keep
// their shape, but the sixteen key bytes are overwritten with a
// deterministic scramble of themselves. An extractor still *finds* a key
// — it is just useless, which also makes the log a honeypot: an attacker
// who installs the decoy reveals themselves at the failed impersonation.
func RandomizeLinkKeyFilter(rec Record) (Record, bool) {
	scramble := func(data []byte, off int) {
		if len(data) < off+16 {
			return
		}
		for i := 0; i < 16; i++ {
			// Position-dependent bijective mangling; not reversible
			// without knowing the rule, and never the identity.
			data[off+i] = data[off+i]*167 + byte(i)*29 + 0x5A
		}
	}
	if len(rec.Data) == 0 {
		return rec, true
	}
	switch hci.PacketType(rec.Data[0]) {
	case hci.PTCommand:
		if len(rec.Data) >= 4 {
			op := hci.Opcode(uint16(rec.Data[1]) | uint16(rec.Data[2])<<8)
			if op == hci.OpLinkKeyRequestReply {
				rec.Data = append([]byte(nil), rec.Data...)
				scramble(rec.Data, 4+6) // after header + BDADDR
			}
		}
	case hci.PTEvent:
		if len(rec.Data) >= 3 && hci.EventCode(rec.Data[1]) == hci.EvLinkKeyNotification {
			rec.Data = append([]byte(nil), rec.Data...)
			scramble(rec.Data, 3+6)
		}
	}
	return rec, true
}

// LinkKeyFilter is the §VII-A mitigation: records whose packet carries a
// link key (HCI_Link_Key_Request_Reply commands and
// HCI_Link_Key_Notification events) are truncated to their headers so the
// key never reaches the log. All other records pass unchanged.
func LinkKeyFilter(rec Record) (Record, bool) {
	if len(rec.Data) == 0 {
		return rec, true
	}
	switch hci.PacketType(rec.Data[0]) {
	case hci.PTCommand:
		if len(rec.Data) >= 4 {
			op := hci.Opcode(uint16(rec.Data[1]) | uint16(rec.Data[2])<<8)
			if op == hci.OpLinkKeyRequestReply {
				// Keep the H4 indicator and the 3-byte command header only
				// (the "log only the first four bytes" option from §VII-A).
				rec.Data = append([]byte(nil), rec.Data[:4]...)
			}
		}
	case hci.PTEvent:
		if len(rec.Data) >= 3 {
			if hci.EventCode(rec.Data[1]) == hci.EvLinkKeyNotification {
				rec.Data = append([]byte(nil), rec.Data[:3]...)
			}
		}
	}
	return rec, true
}
