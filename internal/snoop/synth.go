package snoop

import (
	"bufio"
	"io"
	"math/rand"
	"time"

	"repro/internal/bt"
	"repro/internal/hci"
)

// SynthConfig tunes the synthetic capture generator. The zero value of
// every field selects a sensible default, so SynthConfig{Records: n,
// Seed: s} is the common call.
type SynthConfig struct {
	// Records is the total number of records to emit.
	Records int
	// Seed makes the capture deterministic: equal configs produce
	// byte-identical files.
	Seed int64
	// SessionEvery opens a new ACL session every N records; the records
	// in between are ACL/command/event noise on the open handle, like the
	// background chatter of a long-running device. Default 200.
	SessionEvery int
	// BlockedEvery makes every Nth session carry the page-blocking
	// signature (incoming + local pairing initiation + NoInputNoOutput
	// peer + Link_Key_Notification exposure). Default 8.
	BlockedEvery int
	// StalledEvery makes every Nth session end in a stalled
	// authentication (auth requested, no completion, timeout disconnect)
	// — the accessory-side trace of a link key extraction. Default 7.
	StalledEvery int
	// FailedEvery prefixes every Nth session with an inbound page whose
	// Connection_Complete fails, followed by an outgoing retry — the
	// sequence that used to leak pendingIncoming state in the analyzer.
	// Default 5.
	FailedEvery int
}

// SynthStats reports what a Synthesize call actually wrote.
type SynthStats struct {
	Records         int
	Sessions        int
	KeyExposures    int
	BlockedSessions int
	StalledSessions int
	FailedConnects  int
	// Bytes is the total encoded file size including the 16-byte header.
	Bytes int64
}

func (c *SynthConfig) defaults() {
	if c.SessionEvery <= 0 {
		c.SessionEvery = 200
	}
	if c.BlockedEvery <= 0 {
		c.BlockedEvery = 8
	}
	if c.StalledEvery <= 0 {
		c.StalledEvery = 7
	}
	if c.FailedEvery <= 0 {
		c.FailedEvery = 5
	}
}

// Synthesize writes a deterministic synthetic btsnoop capture of exactly
// cfg.Records records, shaped like the multi-gigabyte always-on HCI logs
// the forensic pipeline must digest: mostly ACL data noise, with
// periodic connection/pairing flows that exercise every analyzer finding
// (plaintext key exposures, page-blocking signatures, stalled
// authentications, failed inbound pages). Records scale to millions;
// generation streams through a buffered writer in constant memory.
func Synthesize(w io.Writer, cfg SynthConfig) (SynthStats, error) {
	cfg.defaults()
	bw := bufio.NewWriterSize(w, 1<<18)
	sw := NewWriter(bw)
	rng := rand.New(rand.NewSource(cfg.Seed))

	var st SynthStats
	var errOut error
	at := time.Duration(0)
	emit := func(flags uint32, wire []byte) bool {
		if st.Records >= cfg.Records || errOut != nil {
			return false
		}
		at += time.Duration(50+rng.Intn(1950)) * time.Microsecond
		rec := Record{
			OriginalLength: uint32(len(wire)),
			Flags:          flags,
			Timestamp:      CaptureBase.Add(at),
			Data:           wire,
		}
		if err := sw.WriteRecord(rec); err != nil {
			errOut = err
			return false
		}
		st.Records++
		st.Bytes += 24 + int64(len(wire))
		return true
	}
	emitCmd := func(c hci.Command) bool {
		return emit(FlagCommandEvent, hci.EncodeCommand(c).Wire())
	}
	emitEvt := func(e hci.Event) bool {
		return emit(FlagCommandEvent|FlagDirectionReceived, hci.EncodeEvent(e).Wire())
	}

	// Reused noise templates; only the ACL handle bytes are patched, so
	// the noise path does no per-record encoding work.
	aclPayload := make([]byte, 27)
	rng.Read(aclPayload)
	aclOut := hci.EncodeACL(hci.DirHostToController, 0, aclPayload).Wire()
	aclIn := hci.EncodeACL(hci.DirControllerToHost, 0, aclPayload).Wire()
	patchHandle := func(wire []byte, h bt.ConnHandle) {
		hf := uint16(h)&0x0FFF | 0x2000
		wire[1] = byte(hf)
		wire[2] = byte(hf >> 8)
	}
	noiseEvt := hci.EncodeEvent(&hci.CommandStatus{
		Status: hci.StatusSuccess, NumPackets: 1, CommandOpcode: hci.OpRemoteNameRequest,
	}).Wire()
	noiseCmd := hci.EncodeCommand(&hci.RemoteNameRequest{}).Wire()

	peers := make([]bt.BDADDR, 8)
	for i := range peers {
		peers[i] = bt.BDADDRFromLittleEndian([6]byte{byte(i + 1), 0x5b, 0xc9, 0x7d, 0x1a, 0x00})
	}

	// session opens connection si and runs its pairing flow, returning
	// the open handle and whether its authentication was left stalled.
	session := func(si int, handle bt.ConnHandle) (open bt.ConnHandle, stalled bool) {
		peer := peers[si%len(peers)]
		var key bt.LinkKey
		rng.Read(key[:])
		if si%cfg.FailedEvery == 0 {
			// Inbound page that dies with a failed completion: the accept
			// must not taint the outgoing retry below as "incoming".
			emitEvt(&hci.ConnectionRequest{Addr: peer, COD: bt.CODHeadset, LinkType: hci.LinkTypeACL})
			emitCmd(&hci.AcceptConnectionRequest{Addr: peer, Role: 1})
			emitEvt(&hci.ConnectionComplete{Status: hci.StatusPageTimeout, Addr: peer})
			st.FailedConnects++
		}
		switch {
		case si%cfg.BlockedEvery == 1:
			// The Fig. 12b signature: incoming connection, locally
			// initiated pairing, NoInputNoOutput peer, fresh key exposed.
			emitEvt(&hci.ConnectionRequest{Addr: peer, COD: bt.CODHeadset, LinkType: hci.LinkTypeACL})
			emitCmd(&hci.AcceptConnectionRequest{Addr: peer, Role: 1})
			emitEvt(&hci.ConnectionComplete{Status: hci.StatusSuccess, Handle: handle, Addr: peer, LinkType: hci.LinkTypeACL})
			emitCmd(&hci.AuthenticationRequested{Handle: handle})
			emitEvt(&hci.IOCapabilityResponse{Addr: peer, Capability: bt.NoInputNoOutput})
			emitEvt(&hci.SimplePairingComplete{Status: hci.StatusSuccess, Addr: peer})
			if emitEvt(&hci.LinkKeyNotification{Addr: peer, Key: key, KeyType: bt.KeyTypeUnauthenticatedP256}) {
				st.KeyExposures++
			}
			emitEvt(&hci.AuthenticationComplete{Status: hci.StatusSuccess, Handle: handle})
			st.BlockedSessions++
		case si%cfg.StalledEvery == 2:
			// Outgoing re-authentication that never completes; the
			// timeout disconnect is emitted when the session closes.
			emitEvt(&hci.ConnectionComplete{Status: hci.StatusSuccess, Handle: handle, Addr: peer, LinkType: hci.LinkTypeACL})
			emitCmd(&hci.AuthenticationRequested{Handle: handle})
			st.StalledSessions++
			stalled = true
		default:
			// Ordinary bonded re-authentication, key served from the
			// host's bond store in plaintext (the §IV exposure).
			emitEvt(&hci.ConnectionComplete{Status: hci.StatusSuccess, Handle: handle, Addr: peer, LinkType: hci.LinkTypeACL})
			emitCmd(&hci.AuthenticationRequested{Handle: handle})
			if emitCmd(&hci.LinkKeyRequestReply{Addr: peer, Key: key}) {
				st.KeyExposures++
			}
			emitEvt(&hci.AuthenticationComplete{Status: hci.StatusSuccess, Handle: handle})
		}
		st.Sessions++
		return handle, stalled
	}

	var (
		si           int
		open         bt.ConnHandle
		openStalled  bool
		sinceSession = 0
	)
	for st.Records < cfg.Records && errOut == nil {
		if sinceSession == 0 || sinceSession >= cfg.SessionEvery {
			if open != 0 {
				reason := hci.StatusRemoteUserTerminated
				if openStalled {
					reason = hci.StatusLMPResponseTimeout
				}
				emitEvt(&hci.DisconnectionComplete{Status: hci.StatusSuccess, Handle: open, Reason: reason})
			}
			open, openStalled = session(si, bt.ConnHandle(si%0x0eff+1))
			si++
			sinceSession = 1
			continue
		}
		switch {
		case sinceSession%13 == 0:
			emit(FlagCommandEvent|FlagDirectionReceived, noiseEvt)
		case sinceSession%11 == 0:
			emit(FlagCommandEvent, noiseCmd)
		case sinceSession%2 == 0:
			patchHandle(aclOut, open)
			emit(0, aclOut)
		default:
			patchHandle(aclIn, open)
			emit(FlagDirectionReceived, aclIn)
		}
		sinceSession++
	}
	if errOut != nil {
		return st, errOut
	}
	if err := sw.Flush(); err != nil { // header even for Records == 0
		return st, err
	}
	st.Bytes += 16
	return st, bw.Flush()
}
