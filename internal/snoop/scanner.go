package snoop

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// Scanner is an incremental btsnoop reader built for multi-gigabyte
// captures: it yields one record at a time from an io.Reader, reusing a
// single payload buffer across records so a full-file pass performs a
// bounded, file-size-independent number of allocations. Contrast with
// ReadAll, which materializes every record (one allocation each) before
// analysis can start.
//
//	sc := snoop.NewScanner(f)
//	for sc.Scan() {
//		rec := sc.Record() // rec.Data valid only until the next Scan
//	}
//	if err := sc.Err(); err != nil { ... }
//
// The current record's Data aliases the internal buffer and is
// invalidated by the next Scan call; callers that retain payloads must
// copy them (Record.Clone). Typed HCI parses (hci.ParseCommand,
// hci.ParseEvent) copy every field they extract, so parse-then-discard
// consumers need no copies at all.
type Scanner struct {
	r        io.Reader
	buf      []byte // reused payload buffer, aliased by the current record
	smallRun int    // consecutive records that fit in shrinkTo
	hdr      [24]byte
	rec      Record
	frame    int
	off      int64 // bytes of the stream consumed so far
	err      error
	started  bool
	datalink uint32
}

// Buffer-shrink policy: one giant record (up to maxRecord, 1 MiB) grows
// the reused payload buffer, and without a release valve the Scanner
// would pin that high-water allocation for the rest of the stream —
// per-connection in blapd, that is max-record-sized ballast per idle
// stream. After shrinkAfter consecutive records that fit in shrinkTo,
// a buffer beyond shrinkCap is traded for a fresh shrinkTo one. The
// run-length condition keeps a genuinely mixed stream (periodic big
// vendor events) from thrashing allocations.
const (
	shrinkCap   = 64 << 10
	shrinkTo    = 4 << 10
	shrinkAfter = 64
)

// NewScanner returns a Scanner over a btsnoop stream. Plain readers
// (files, pipes, sockets) are wrapped in a bufio.Reader; in-memory
// readers that already deliver bytes without syscalls are used as-is.
func NewScanner(r io.Reader) *Scanner {
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReaderSize(r, 64<<10)
	}
	return &Scanner{r: r}
}

// Scan advances to the next record. It returns false at end of stream or
// on error; Err distinguishes the two.
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	// Shrink at the top of Scan, where the previous record's Data alias
	// has just expired per the documented contract — never mid-record.
	if s.smallRun >= shrinkAfter && cap(s.buf) > shrinkCap {
		s.buf = make([]byte, shrinkTo)
		s.smallRun = 0
	}
	if !s.started {
		s.started = true
		dl, n, err := readFileHeader(s.r)
		s.off += int64(n)
		if err != nil {
			s.err = err
			return false
		}
		s.datalink = dl
	}
	hdrStart := s.off
	n, err := io.ReadFull(s.r, s.hdr[:])
	s.off += int64(n)
	if err != nil {
		if errors.Is(err, io.EOF) {
			// Zero bytes at a record boundary: the clean end of a log.
			s.err = io.EOF
		} else {
			s.err = fmt.Errorf("%w: record header at offset %d: %w",
				ErrTruncated, hdrStart, eofUnexpected(err))
		}
		return false
	}
	rec, incl, err := decodeRecordHeader(&s.hdr)
	if err != nil {
		// The bytes were all present but the header is nonsense; the
		// failure is the header itself, so point the offset back at it.
		s.off = hdrStart
		s.err = fmt.Errorf("record header at offset %d: %w", hdrStart, err)
		return false
	}
	if int(incl) <= shrinkTo {
		s.smallRun++
	} else {
		s.smallRun = 0
	}
	if cap(s.buf) < int(incl) {
		s.buf = make([]byte, incl)
	}
	data := s.buf[:incl]
	n, err = io.ReadFull(s.r, data)
	s.off += int64(n)
	if err != nil {
		s.err = fmt.Errorf("%w: record data at offset %d: %w",
			ErrTruncated, s.off, eofUnexpected(err))
		return false
	}
	rec.Data = data
	s.rec = rec
	s.frame++
	return true
}

// Record returns the current record. Its Data field aliases the
// Scanner's internal buffer and is valid only until the next Scan call.
func (s *Scanner) Record() Record { return s.rec }

// Frame returns the 1-based capture position of the current record,
// matching how real captures (and ReadAll-based code) number frames.
func (s *Scanner) Frame() int { return s.frame }

// Offset returns the byte offset reached in the stream: after a
// successful Scan, the end of the current record; after Scan returns
// false, the position at which the stream ended or died — the exact
// point bytes ran out for truncation (Err wraps io.ErrUnexpectedEOF),
// or the start of the offending record header for framing errors (Err
// wraps ErrBadFraming). Operators use this to report *where* a capture
// was cut off, not just that it was.
func (s *Scanner) Offset() int64 { return s.off }

// Err returns the first error encountered, or nil if the stream ended
// cleanly at a record boundary. Errors are classified so callers can
// triage how a stream died: a capture cut off mid-record wraps
// io.ErrUnexpectedEOF (distinct from the clean end-of-log case, which
// reports nil), corrupt length framing wraps ErrBadFraming, and
// transport failures (e.g. a socket read deadline) keep their underlying
// error in the chain.
func (s *Scanner) Err() error {
	if s.err == io.EOF {
		return nil
	}
	return s.err
}

// Datalink returns the stream's datalink type; valid after the first
// Scan call.
func (s *Scanner) Datalink() uint32 { return s.datalink }

// Clone returns a deep copy of the record whose Data no longer aliases
// any scanner buffer.
func (r Record) Clone() Record {
	r.Data = append([]byte(nil), r.Data...)
	return r
}

// Rewrite is the Writer-side mirror of Scanner: it streams records from
// src through filter into dst without ever buffering more than one
// record, so a multi-gigabyte capture can be filtered (e.g. with
// LinkKeyFilter) in constant memory. A nil filter copies the capture
// verbatim. Filters must not retain the record's Data across calls; the
// stock filters copy before rewriting. It returns how many records were
// kept and dropped. The source stream's datalink type is propagated to
// the output header, so a non-H4 capture round-trips instead of being
// silently restamped as H4.
func Rewrite(dst io.Writer, src io.Reader, filter func(Record) (Record, bool)) (kept, dropped int, err error) {
	sc := NewScanner(src)
	w := NewWriter(dst)
	for sc.Scan() {
		// The datalink is known once the first Scan has consumed the
		// file header; latch it before the Writer emits its own header.
		w.SetDatalink(sc.Datalink())
		rec := sc.Record()
		if filter != nil {
			out, ok := filter(rec)
			if !ok {
				dropped++
				continue
			}
			rec = out
		}
		if err := w.WriteRecord(rec); err != nil {
			return kept, dropped, err
		}
		kept++
	}
	if err := sc.Err(); err != nil {
		return kept, dropped, err
	}
	// A record-free source still read its file header; preserve its
	// datalink on the header-only output too.
	w.SetDatalink(sc.Datalink())
	return kept, dropped, w.Flush()
}
