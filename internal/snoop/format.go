// Package snoop implements the RFC 1761 packet capture format as profiled
// for Bluetooth HCI ("btsnoop"), the on-disk format of Android's
// "Bluetooth HCI snoop log" and BlueZ's hcidump. It provides a writer, a
// reader, an HCI-transport tap that records live traffic (the HCI dump
// module the paper's link key extraction attack exploits), a
// link-key-filtering variant of that tap (the paper's §VII-A mitigation),
// and an hcidump-style text renderer used to regenerate the paper's
// Fig. 3 and Fig. 12 traces.
package snoop

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// File format constants.
const (
	// magic is the 8-byte identification pattern "btsnoop\0".
	magic = "btsnoop\x00"

	// Version is the only defined format version.
	Version = 1

	// DatalinkH1 identifies un-encapsulated HCI (H1) records.
	DatalinkH1 = 1001

	// DatalinkH4 identifies HCI UART (H4) encapsulation: each record is an
	// H4 packet beginning with the packet-type indicator octet.
	DatalinkH4 = 1002

	// DatalinkBCSP identifies BCSP-encapsulated records.
	DatalinkBCSP = 1003

	// DatalinkH5 identifies 3-wire UART (H5) encapsulated records.
	DatalinkH5 = 1004

	// btsnoopEpochDelta is the number of microseconds between the btsnoop
	// epoch (0000-01-01 00:00:00) and the Unix epoch, per the Android and
	// Wireshark implementations.
	btsnoopEpochDelta = int64(0x00dcddb30f2f8000)
)

// Record flags (RFC 1761 as profiled for btsnoop).
const (
	// FlagDirectionReceived is set on controller-to-host packets.
	FlagDirectionReceived uint32 = 0x01
	// FlagCommandEvent is set on command and event packets (as opposed to
	// ACL/SCO data).
	FlagCommandEvent uint32 = 0x02
)

// Record is one captured packet.
type Record struct {
	// OriginalLength is the untruncated packet length.
	OriginalLength uint32
	// Flags encodes direction and command/event classification.
	Flags uint32
	// CumulativeDrops counts packets lost before this record.
	CumulativeDrops uint32
	// Timestamp is the capture time.
	Timestamp time.Time
	// Data is the captured (possibly truncated) H4 packet bytes.
	Data []byte
}

// Received reports whether the packet travelled controller-to-host.
func (r Record) Received() bool { return r.Flags&FlagDirectionReceived != 0 }

// Truncated reports whether payload bytes were omitted from Data, e.g. by
// the link-key-filtering mitigation.
func (r Record) Truncated() bool { return int(r.OriginalLength) != len(r.Data) }

// Format errors.
var (
	ErrBadMagic    = errors.New("snoop: bad identification pattern")
	ErrBadVersion  = errors.New("snoop: unsupported version")
	ErrBadDatalink = errors.New("snoop: unsupported datalink type")
	ErrTruncated   = errors.New("snoop: truncated file")
	ErrBadFraming  = errors.New("snoop: included length exceeds original length")
)

// Writer emits a btsnoop stream.
type Writer struct {
	w        io.Writer
	datalink uint32
	started  bool
}

// NewWriter returns a Writer that emits the file header on the first
// record (or on Flush). The datalink defaults to DatalinkH4; use
// SetDatalink before the first record to emit a different one (Rewrite
// does this to preserve the source stream's datalink).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w, datalink: DatalinkH4} }

// SetDatalink sets the datalink type stamped into the file header. It
// has no effect once the header has been written.
func (w *Writer) SetDatalink(datalink uint32) {
	if !w.started {
		w.datalink = datalink
	}
}

func (w *Writer) header() error {
	if w.started {
		return nil
	}
	w.started = true
	var hdr [16]byte
	copy(hdr[:8], magic)
	binary.BigEndian.PutUint32(hdr[8:12], Version)
	binary.BigEndian.PutUint32(hdr[12:16], w.datalink)
	_, err := w.w.Write(hdr[:])
	return err
}

// WriteRecord appends one record.
func (w *Writer) WriteRecord(r Record) error {
	if err := w.header(); err != nil {
		return fmt.Errorf("snoop: writing header: %w", err)
	}
	orig := r.OriginalLength
	if orig == 0 {
		// An unset OriginalLength means "nothing was truncated": default
		// to the captured length instead of silently writing a record
		// that every reader would treat as truncated (and that the
		// framing validation below would reject on read-back).
		orig = uint32(len(r.Data))
	}
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], orig)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(r.Data)))
	binary.BigEndian.PutUint32(hdr[8:12], r.Flags)
	binary.BigEndian.PutUint32(hdr[12:16], r.CumulativeDrops)
	ts := r.Timestamp.UnixMicro() + btsnoopEpochDelta
	binary.BigEndian.PutUint64(hdr[16:24], uint64(ts))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("snoop: writing record header: %w", err)
	}
	if _, err := w.w.Write(r.Data); err != nil {
		return fmt.Errorf("snoop: writing record data: %w", err)
	}
	return nil
}

// Flush forces the file header out even if no records were written.
func (w *Writer) Flush() error { return w.header() }

// Reader parses a btsnoop stream.
type Reader struct {
	r        io.Reader
	datalink uint32
	started  bool
}

// NewReader returns a Reader over a btsnoop stream. The header is
// validated on the first ReadRecord call.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Datalink returns the stream's datalink type; valid after the first
// successful ReadRecord.
func (r *Reader) Datalink() uint32 { return r.datalink }

// readFileHeader consumes and validates the 16-byte file header,
// returning the datalink type and how many bytes were consumed. Shared
// by Reader and Scanner. A stream that ends inside the header — including
// an empty stream — is classified as io.ErrUnexpectedEOF (there is no
// record boundary to end cleanly at before the header).
func readFileHeader(r io.Reader) (uint32, int, error) {
	var hdr [16]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, n, fmt.Errorf("%w: file header: %w", ErrTruncated, err)
	}
	dl, err := parseFileHeader(&hdr)
	return dl, n, err
}

// parseFileHeader validates a fully buffered 16-byte file header and
// returns the datalink type. Shared by readFileHeader and BatchScanner
// so both enforce identical rules. All datalink types btsnoop defines
// are accepted (H1/H4/BCSP/H5 — Rewrite must round-trip any of them);
// anything else is ErrBadDatalink.
func parseFileHeader(hdr *[16]byte) (uint32, error) {
	if string(hdr[:8]) != magic {
		return 0, ErrBadMagic
	}
	if v := binary.BigEndian.Uint32(hdr[8:12]); v != Version {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	datalink := binary.BigEndian.Uint32(hdr[12:16])
	switch datalink {
	case DatalinkH1, DatalinkH4, DatalinkBCSP, DatalinkH5:
		return datalink, nil
	}
	return 0, fmt.Errorf("%w: %d", ErrBadDatalink, datalink)
}

func (r *Reader) readHeader() error {
	if r.started {
		return nil
	}
	r.started = true
	dl, _, err := readFileHeader(r.r)
	if err != nil {
		return err
	}
	r.datalink = dl
	return nil
}

// maxRecord bounds a single record payload; no real H4 packet comes
// close, and the cap keeps hostile length fields from forcing huge
// allocations.
const maxRecord = 1 << 20

// decodeRecordHeader parses the 24-byte record header into everything
// but the payload, validating the length framing. Shared by Reader and
// Scanner so both enforce identical rules.
func decodeRecordHeader(hdr *[24]byte) (rec Record, incl uint32, err error) {
	rec = Record{
		OriginalLength:  binary.BigEndian.Uint32(hdr[0:4]),
		Flags:           binary.BigEndian.Uint32(hdr[8:12]),
		CumulativeDrops: binary.BigEndian.Uint32(hdr[12:16]),
	}
	incl = binary.BigEndian.Uint32(hdr[4:8])
	ts := int64(binary.BigEndian.Uint64(hdr[16:24])) - btsnoopEpochDelta
	rec.Timestamp = time.UnixMicro(ts).UTC()
	if incl > maxRecord {
		return Record{}, 0, fmt.Errorf("snoop: implausible record length %d", incl)
	}
	if incl > rec.OriginalLength {
		return Record{}, 0, fmt.Errorf("%w: included %d > original %d", ErrBadFraming, incl, rec.OriginalLength)
	}
	return rec, incl, nil
}

// ReadRecord returns the next record, or io.EOF at end of stream. A
// stream that dies mid-record wraps both ErrTruncated and
// io.ErrUnexpectedEOF, so callers can distinguish a cleanly closed log
// from one cut off mid-write; Scanner applies the same classification.
func (r *Reader) ReadRecord() (Record, error) {
	if err := r.readHeader(); err != nil {
		return Record{}, err
	}
	var hdr [24]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: record header: %w", ErrTruncated, eofUnexpected(err))
	}
	rec, incl, err := decodeRecordHeader(&hdr)
	if err != nil {
		return Record{}, err
	}
	rec.Data = make([]byte, incl)
	if _, err := io.ReadFull(r.r, rec.Data); err != nil {
		return Record{}, fmt.Errorf("%w: record data: %w", ErrTruncated, eofUnexpected(err))
	}
	return rec, nil
}

// eofUnexpected maps any flavor of end-of-stream to io.ErrUnexpectedEOF:
// once part of an element has been consumed, running out of bytes is
// mid-record truncation no matter which sentinel the reader returned.
// Non-EOF errors (real I/O failures, deadline expiries) pass through so
// errors.Is can still see them.
func eofUnexpected(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadAll parses a complete btsnoop file from a byte slice. Payloads
// are carved from a Slab rather than allocated per record, so
// materializing a million-record capture costs hundreds of allocations,
// not millions.
func ReadAll(data []byte) ([]Record, error) {
	sc := NewBatchScannerBytes(data)
	var (
		out  []Record
		slab Slab
		b    RecordBatch
	)
	for sc.ScanBatch(&b) {
		for _, rec := range b.Records {
			out = append(out, rec.CloneInto(&slab))
		}
	}
	return out, sc.Err()
}
