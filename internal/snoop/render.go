package snoop

import (
	"fmt"
	"strings"

	"repro/internal/bt"
	"repro/internal/hci"
)

// FrameSummary is one row of an hcidump/Frontline-style trace table, the
// presentation used in the paper's Fig. 3 and Fig. 12.
type FrameSummary struct {
	Frame   int
	Type    string // "Command" or "Event" (data frames are skipped)
	Command string // opcode name for commands, or the acknowledged opcode
	Event   string // event name
	Handle  string // connection handle when present, e.g. "0x0006"
	Status  string // status name when present
}

// Summarize decodes command/event records into trace-table rows. Frame
// numbers are 1-based positions within the capture (all packet types
// count, matching how real captures number frames).
func Summarize(records []Record) []FrameSummary {
	var rows []FrameSummary
	for i, rec := range records {
		if len(rec.Data) == 0 {
			continue
		}
		dir := hci.DirHostToController
		if rec.Received() {
			dir = hci.DirControllerToHost
		}
		pkt, err := hci.ParseWire(dir, rec.Data)
		if err != nil {
			continue
		}
		row := FrameSummary{Frame: i + 1}
		switch pkt.PT {
		case hci.PTCommand:
			row.Type = "Command"
			op, _ := pkt.CommandOpcode()
			row.Command = op.String()
			if cmd, err := hci.ParseCommand(pkt); err == nil {
				switch c := cmd.(type) {
				case *hci.AuthenticationRequested:
					row.Handle = fmt.Sprintf("0x%04x", uint16(c.Handle))
				case *hci.Disconnect:
					row.Handle = fmt.Sprintf("0x%04x", uint16(c.Handle))
				case *hci.SetConnectionEncryption:
					row.Handle = fmt.Sprintf("0x%04x", uint16(c.Handle))
				}
			}
		case hci.PTEvent:
			row.Type = "Event"
			code, _ := pkt.EventCode()
			row.Event = code.String()
			if evt, err := hci.ParseEvent(pkt); err == nil {
				switch e := evt.(type) {
				case *hci.CommandStatus:
					row.Command = e.CommandOpcode.String()
					row.Status = e.Status.String()
				case *hci.CommandComplete:
					row.Command = e.CommandOpcode.String()
					if len(e.ReturnParams) > 0 {
						row.Status = hci.Status(e.ReturnParams[0]).String()
					}
				case *hci.ConnectionComplete:
					row.Handle = fmt.Sprintf("0x%04x", uint16(e.Handle))
					row.Status = e.Status.String()
				case *hci.DisconnectionComplete:
					row.Handle = fmt.Sprintf("0x%04x", uint16(e.Handle))
					row.Status = e.Reason.String()
				case *hci.AuthenticationComplete:
					row.Handle = fmt.Sprintf("0x%04x", uint16(e.Handle))
					row.Status = e.Status.String()
				case *hci.EncryptionChange:
					row.Handle = fmt.Sprintf("0x%04x", uint16(e.Handle))
					row.Status = e.Status.String()
				case *hci.SimplePairingComplete:
					row.Status = e.Status.String()
				case *hci.InquiryComplete:
					row.Status = e.Status.String()
				}
			}
		default:
			continue
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable renders rows in the Frontline-style columnar layout of the
// paper's Fig. 12.
func RenderTable(rows []FrameSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-8s %-45s %-35s %-8s %s\n", "Fra", "Type", "Opcode Command", "Event", "Handle", "Status")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5d %-8s %-45s %-35s %-8s %s\n", r.Frame, r.Type, r.Command, r.Event, r.Handle, r.Status)
	}
	return b.String()
}

// CommandEventNames flattens rows to "name" strings (command opcode names
// for commands, event names for events), for sequence assertions in tests.
func CommandEventNames(rows []FrameSummary) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		if r.Type == "Command" {
			out = append(out, r.Command)
		} else {
			out = append(out, r.Event)
		}
	}
	return out
}

// LinkKeyHit is one plaintext link key located in a capture.
type LinkKeyHit struct {
	Frame int // 1-based frame number
	// Source describes the carrying packet: "HCI_Link_Key_Request_Reply"
	// or "HCI_Link_Key_Notification".
	Source string
	Peer   bt.BDADDR
	Key    bt.LinkKey
}

// ExtractLinkKeys scans a capture for packets that carry link keys and
// returns every key found — the core of the paper's link key extraction
// attack when the HCI dump is the source.
func ExtractLinkKeys(records []Record) []LinkKeyHit {
	var hits []LinkKeyHit
	for i, rec := range records {
		if len(rec.Data) == 0 {
			continue
		}
		dir := hci.DirHostToController
		if rec.Received() {
			dir = hci.DirControllerToHost
		}
		pkt, err := hci.ParseWire(dir, rec.Data)
		if err != nil {
			continue
		}
		switch pkt.PT {
		case hci.PTCommand:
			cmd, err := hci.ParseCommand(pkt)
			if err != nil {
				continue
			}
			if c, ok := cmd.(*hci.LinkKeyRequestReply); ok {
				hits = append(hits, LinkKeyHit{
					Frame:  i + 1,
					Source: hci.OpLinkKeyRequestReply.String(),
					Peer:   c.Addr,
					Key:    c.Key,
				})
			}
		case hci.PTEvent:
			evt, err := hci.ParseEvent(pkt)
			if err != nil {
				continue
			}
			if e, ok := evt.(*hci.LinkKeyNotification); ok {
				hits = append(hits, LinkKeyHit{
					Frame:  i + 1,
					Source: hci.EvLinkKeyNotification.String(),
					Peer:   e.Addr,
					Key:    e.Key,
				})
			}
		}
	}
	return hits
}

// KeysFor filters hits to those whose peer address matches addr.
func KeysFor(hits []LinkKeyHit, addr bt.BDADDR) []LinkKeyHit {
	var out []LinkKeyHit
	for _, h := range hits {
		if h.Peer == addr {
			out = append(out, h)
		}
	}
	return out
}
