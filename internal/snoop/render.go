package snoop

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/bt"
	"repro/internal/hci"
)

// FrameSummary is one row of an hcidump/Frontline-style trace table, the
// presentation used in the paper's Fig. 3 and Fig. 12.
type FrameSummary struct {
	Frame   int
	Type    string // "Command" or "Event" (data frames are skipped)
	Command string // opcode name for commands, or the acknowledged opcode
	Event   string // event name
	Handle  string // connection handle when present, e.g. "0x0006"
	Status  string // status name when present
}

// Summarize decodes command/event records into trace-table rows. Frame
// numbers are 1-based positions within the capture (all packet types
// count, matching how real captures number frames).
func Summarize(records []Record) []FrameSummary {
	var rows []FrameSummary
	for i, rec := range records {
		if row, ok := summarizeRecord(i+1, rec); ok {
			rows = append(rows, row)
		}
	}
	return rows
}

// SummarizeStream is Summarize over a btsnoop stream: rows are emitted
// one at a time as the capture is scanned, so arbitrarily large files
// render in constant memory.
func SummarizeStream(r io.Reader, emit func(FrameSummary)) error {
	sc := NewScanner(r)
	for sc.Scan() {
		if row, ok := summarizeRecord(sc.Frame(), sc.Record()); ok {
			emit(row)
		}
	}
	return sc.Err()
}

// SummarizeRecord decodes one record into a trace-table row, reporting
// false for frames the table skips (data packets). It is the per-record
// form of SummarizeStream for callers that drive their own Scanner —
// e.g. to observe every record, not just the rendered ones.
func SummarizeRecord(frame int, rec Record) (FrameSummary, bool) {
	return summarizeRecord(frame, rec)
}

// summarizeRecord decodes one record into a trace-table row. The record
// body is only borrowed (never retained), so scanner-owned buffers are
// safe here.
func summarizeRecord(frame int, rec Record) (FrameSummary, bool) {
	if len(rec.Data) == 0 {
		return FrameSummary{}, false
	}
	dir := hci.DirHostToController
	if rec.Received() {
		dir = hci.DirControllerToHost
	}
	pkt, err := hci.ParseWireBorrow(dir, rec.Data)
	if err != nil {
		return FrameSummary{}, false
	}
	row := FrameSummary{Frame: frame}
	switch pkt.PT {
	case hci.PTCommand:
		row.Type = "Command"
		op, _ := pkt.CommandOpcode()
		row.Command = op.String()
		if cmd, err := hci.ParseCommand(pkt); err == nil {
			switch c := cmd.(type) {
			case *hci.AuthenticationRequested:
				row.Handle = fmt.Sprintf("0x%04x", uint16(c.Handle))
			case *hci.Disconnect:
				row.Handle = fmt.Sprintf("0x%04x", uint16(c.Handle))
			case *hci.SetConnectionEncryption:
				row.Handle = fmt.Sprintf("0x%04x", uint16(c.Handle))
			}
		}
	case hci.PTEvent:
		row.Type = "Event"
		code, _ := pkt.EventCode()
		row.Event = code.String()
		if evt, err := hci.ParseEvent(pkt); err == nil {
			switch e := evt.(type) {
			case *hci.CommandStatus:
				row.Command = e.CommandOpcode.String()
				row.Status = e.Status.String()
			case *hci.CommandComplete:
				row.Command = e.CommandOpcode.String()
				if len(e.ReturnParams) > 0 {
					row.Status = hci.Status(e.ReturnParams[0]).String()
				}
			case *hci.ConnectionComplete:
				row.Handle = fmt.Sprintf("0x%04x", uint16(e.Handle))
				row.Status = e.Status.String()
			case *hci.DisconnectionComplete:
				row.Handle = fmt.Sprintf("0x%04x", uint16(e.Handle))
				row.Status = e.Reason.String()
			case *hci.AuthenticationComplete:
				row.Handle = fmt.Sprintf("0x%04x", uint16(e.Handle))
				row.Status = e.Status.String()
			case *hci.EncryptionChange:
				row.Handle = fmt.Sprintf("0x%04x", uint16(e.Handle))
				row.Status = e.Status.String()
			case *hci.SimplePairingComplete:
				row.Status = e.Status.String()
			case *hci.InquiryComplete:
				row.Status = e.Status.String()
			}
		}
	default:
		return FrameSummary{}, false
	}
	return row, true
}

// TableHeader returns the header line of the Frontline-style trace table.
func TableHeader() string {
	return fmt.Sprintf("%-5s %-8s %-45s %-35s %-8s %s\n", "Fra", "Type", "Opcode Command", "Event", "Handle", "Status")
}

// FormatRow renders one trace-table row, newline-terminated.
func FormatRow(r FrameSummary) string {
	return fmt.Sprintf("%-5d %-8s %-45s %-35s %-8s %s\n", r.Frame, r.Type, r.Command, r.Event, r.Handle, r.Status)
}

// RenderTable renders rows in the Frontline-style columnar layout of the
// paper's Fig. 12.
func RenderTable(rows []FrameSummary) string {
	var b strings.Builder
	b.WriteString(TableHeader())
	for _, r := range rows {
		b.WriteString(FormatRow(r))
	}
	return b.String()
}

// CommandEventNames flattens rows to "name" strings (command opcode names
// for commands, event names for events), for sequence assertions in tests.
func CommandEventNames(rows []FrameSummary) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		if r.Type == "Command" {
			out = append(out, r.Command)
		} else {
			out = append(out, r.Event)
		}
	}
	return out
}

// LinkKeyHit is one plaintext link key located in a capture.
type LinkKeyHit struct {
	Frame int // 1-based frame number
	// Source describes the carrying packet: "HCI_Link_Key_Request_Reply"
	// or "HCI_Link_Key_Notification".
	Source string
	Peer   bt.BDADDR
	Key    bt.LinkKey
}

// ExtractLinkKeys scans a capture for packets that carry link keys and
// returns every key found — the core of the paper's link key extraction
// attack when the HCI dump is the source.
func ExtractLinkKeys(records []Record) []LinkKeyHit {
	var hits []LinkKeyHit
	for i, rec := range records {
		if hit, ok := linkKeyFromRecord(i+1, rec); ok {
			hits = append(hits, hit)
		}
	}
	return hits
}

// ScanLinkKeys is ExtractLinkKeys over a btsnoop stream: the capture is
// scanned record by record with a reused buffer, so multi-gigabyte dumps
// are searched in constant memory.
func ScanLinkKeys(r io.Reader) ([]LinkKeyHit, error) {
	sc := NewScanner(r)
	var hits []LinkKeyHit
	for sc.Scan() {
		if hit, ok := linkKeyFromRecord(sc.Frame(), sc.Record()); ok {
			hits = append(hits, hit)
		}
	}
	return hits, sc.Err()
}

// linkKeyFromRecord extracts a link key from one record, if it carries
// one. The opcode/event peek keeps the hot path allocation-free: only
// the two key-bearing packet kinds are ever fully parsed.
func linkKeyFromRecord(frame int, rec Record) (LinkKeyHit, bool) {
	raw := rec.Data
	interesting := false
	if op, ok := hci.PeekCommandOpcode(raw); ok {
		interesting = op == hci.OpLinkKeyRequestReply
	} else if code, ok := hci.PeekEventCode(raw); ok {
		interesting = code == hci.EvLinkKeyNotification
	}
	if !interesting {
		return LinkKeyHit{}, false
	}
	dir := hci.DirHostToController
	if rec.Received() {
		dir = hci.DirControllerToHost
	}
	pkt, err := hci.ParseWireBorrow(dir, raw)
	if err != nil {
		return LinkKeyHit{}, false
	}
	switch pkt.PT {
	case hci.PTCommand:
		cmd, err := hci.ParseCommand(pkt)
		if err != nil {
			return LinkKeyHit{}, false
		}
		if c, ok := cmd.(*hci.LinkKeyRequestReply); ok {
			return LinkKeyHit{Frame: frame, Source: hci.OpLinkKeyRequestReply.String(), Peer: c.Addr, Key: c.Key}, true
		}
	case hci.PTEvent:
		evt, err := hci.ParseEvent(pkt)
		if err != nil {
			return LinkKeyHit{}, false
		}
		if e, ok := evt.(*hci.LinkKeyNotification); ok {
			return LinkKeyHit{Frame: frame, Source: hci.EvLinkKeyNotification.String(), Peer: e.Addr, Key: e.Key}, true
		}
	}
	return LinkKeyHit{}, false
}

// KeysFor filters hits to those whose peer address matches addr.
func KeysFor(hits []LinkKeyHit, addr bt.BDADDR) []LinkKeyHit {
	var out []LinkKeyHit
	for _, h := range hits {
		if h.Peer == addr {
			out = append(out, h)
		}
	}
	return out
}
