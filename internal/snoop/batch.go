package snoop

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Batch scanning: the record-at-a-time Scanner costs two io.ReadFull
// calls (plus a bufio memmove each) per record, which at millions of
// records per second is most of the ingest budget. BatchScanner inverts
// the loop: one large Read per pass deposits a block of the stream
// directly into the batch's buffer, and a single in-memory sweep decodes
// every complete record header in it. Steady-state cost is one syscall
// and one buffer sweep per ~64 KiB of capture instead of two reads per
// ~50-byte record. For captures already in memory, NewBatchScannerBytes
// skips even that one copy and decodes records aliasing the input.
//
//	sc := snoop.NewBatchScanner(r)
//	var b snoop.RecordBatch
//	for sc.ScanBatch(&b) {
//		for i := range b.Records { ... } // Data valid until the next ScanBatch on b
//	}
//	if err := sc.Err(); err != nil { ... }
//
// Liveness: ScanBatch never waits for a full block — it returns as soon
// as at least one complete record is buffered, so a trickling live
// stream yields one-record batches at one-record latency while a bulk
// upload yields block-sized batches. That property is what lets the
// sentinel daemon run the same code for a phone dribbling HCI events
// and a 50 MB log replayed at socket speed.
//
// Error and offset semantics mirror Scanner exactly (clean EOF at a
// record boundary, ErrTruncated wrapping io.ErrUnexpectedEOF mid-record
// with Offset at the death byte, framing errors rewound to the offending
// header); the FuzzScanner differential pins the two scanners to
// identical record sequences, offsets, and error classes on arbitrary
// input.
type BatchScanner struct {
	r          io.Reader
	all        []byte // bytes mode: the entire stream, decoded in place
	pos        int    // bytes mode: consumed index into all
	tail       []byte // stream mode: partial element carried between batches
	off        int64  // stream offset of the first unconsumed byte
	frame      int    // frames delivered so far
	err        error  // terminal state; io.EOF means clean end
	rdErr      error  // pending read error, surfaced once buffered bytes drain
	started    bool
	datalink   uint32
	smallRun   int // consecutive records <= shrinkTo, for the shrink valve
	batchBytes int
}

// RecordBatch is one batch of decoded records. Records[i].Data aliases
// the batch's internal buffer (or, in bytes mode, the input slice),
// which the owning BatchScanner refills on the next ScanBatch call with
// this batch — so a batch handed to another goroutine (the sentinel
// ring) stays valid until it is recycled, and a batch reused in a loop
// is valid until the next ScanBatch(&b). Payloads that must outlive the
// batch are copied, cheaply, via Slab.Copy rather than per-record Clone
// allocations.
type RecordBatch struct {
	// Records holds the batch's records in capture order.
	Records []Record
	// First is the 1-based frame number of the first record scanned for
	// this batch. Under ScanBatch, Records[i] is frame First+i, matching
	// Scanner.Frame numbering; under ScanBatchKeep batches are not
	// contiguous and Frames is authoritative instead.
	First int
	// Frames, filled only by ScanBatchKeep, holds the 1-based frame
	// number of each Records[i]. Empty for ScanBatch batches.
	Frames []int

	buf []byte // stream mode: backing store for every Records[i].Data
}

const (
	// defaultBatchBytes is the target block size per batch: large enough
	// that header decoding amortizes the syscall, small enough that
	// MaxStreams concurrent batches stay cheap (4 in-flight batches per
	// sentinel stream = 256 KiB).
	defaultBatchBytes = 64 << 10

	// maxBatchRecords bounds Records growth per batch so a bytes-mode
	// scan over a million-record capture recycles one modest struct
	// slice instead of materializing them all at once.
	maxBatchRecords = 4096
)

// NewBatchScanner returns a BatchScanner over a btsnoop stream with the
// default block size. Unlike NewScanner it never wraps r in a
// bufio.Reader — the batch buffer is the read buffer.
func NewBatchScanner(r io.Reader) *BatchScanner {
	return NewBatchScannerSize(r, defaultBatchBytes)
}

// NewBatchScannerSize is NewBatchScanner with an explicit target block
// size (bytes read per syscall and decoded per sweep). Values below 4
// KiB are raised to 4 KiB. Batch analysis of on-disk captures profits
// from larger blocks (256 KiB); live sockets from the default.
func NewBatchScannerSize(r io.Reader, blockBytes int) *BatchScanner {
	if blockBytes < 4<<10 {
		blockBytes = 4 << 10
	}
	return &BatchScanner{r: r, batchBytes: blockBytes}
}

// ResumeBatchScanner returns a BatchScanner that continues a previously
// interrupted scan: r must deliver the capture's bytes starting at
// absolute offset off (a record boundary reached by the earlier scan),
// frame is the 1-based frame count already delivered, and datalink is
// the file header's datalink type (the header was consumed by the
// earlier scan and is not expected again). Offsets, frame numbers, and
// error classification continue exactly as if one scanner had read the
// whole stream — the resume contract blapd's session checkpoints rely
// on.
func ResumeBatchScanner(r io.Reader, blockBytes int, off int64, frame int, datalink uint32) *BatchScanner {
	s := NewBatchScannerSize(r, blockBytes)
	s.started = true
	s.off = off
	s.frame = frame
	s.datalink = datalink
	return s
}

// NewBatchScannerBytes returns a BatchScanner over an in-memory capture.
// No bytes are copied: batch records alias data directly, so the caller
// must not mutate data while batches are in use. Semantics are otherwise
// identical to the streaming scanner.
func NewBatchScannerBytes(data []byte) *BatchScanner {
	if data == nil {
		data = []byte{} // non-nil sentinel: all==nil selects stream mode
	}
	return &BatchScanner{all: data, rdErr: io.EOF, batchBytes: defaultBatchBytes}
}

// fill appends one Read's worth of bytes to buf, remembering a read
// error for later classification (bytes delivered alongside an error are
// still consumed first).
func (s *BatchScanner) fill(buf []byte) []byte {
	if len(buf) == cap(buf) {
		// The pending element outgrows the block: grow geometrically,
		// bounded by the maxRecord cap enforced in decodeRecordHeader.
		grown := make([]byte, len(buf), 2*cap(buf))
		copy(grown, buf)
		buf = grown
	}
	n, err := s.r.Read(buf[len(buf):cap(buf)])
	if err != nil {
		s.rdErr = err
	}
	return buf[: len(buf)+n : cap(buf)]
}

// decodeSpan is the hot loop shared by both modes: it decodes every
// complete record in buf[pos:] into b (up to maxBatchRecords),
// advancing the scanner's offset/frame/shrink counters, and returns the
// new consumed position. A corrupt header stages s.err — positioned at
// the header's start, which is left unconsumed — and stops the sweep.
func (s *BatchScanner) decodeSpan(b *RecordBatch, buf []byte, pos int, keep func([]byte) bool) int {
	n := len(buf)
	off := s.off
	frame := s.frame
	smallRun := s.smallRun
	recs := b.Records
	frames := b.Frames
	for n-pos >= 24 && len(recs) < maxBatchRecords {
		h := buf[pos : pos+24]
		orig := binary.BigEndian.Uint32(h)
		incl := binary.BigEndian.Uint32(h[4:8])
		if incl > maxRecord || incl > orig {
			// Rebuild the precise error through the shared slow path so
			// both scanners report byte-identical failures.
			s.off, s.frame, s.smallRun = off, frame, smallRun
			b.Records, b.Frames = recs, frames
			_, _, derr := decodeRecordHeader((*[24]byte)(h))
			s.err = fmt.Errorf("record header at offset %d: %w", off, derr)
			return pos
		}
		end := pos + 24 + int(incl)
		if end > n {
			break // payload not fully buffered yet
		}
		data := buf[pos+24 : end : end]
		pos = end
		off += int64(24 + incl)
		frame++
		if int(incl) <= shrinkTo {
			smallRun++
		} else {
			smallRun = 0
		}
		if keep != nil {
			// Filtered scan: rejected payloads cost only the header sweep
			// — no Record construction, no timestamp conversion.
			if !keep(data) {
				continue
			}
			frames = append(frames, frame)
		}
		recs = append(recs, Record{
			OriginalLength:  orig,
			Flags:           binary.BigEndian.Uint32(h[8:12]),
			CumulativeDrops: binary.BigEndian.Uint32(h[12:16]),
			Timestamp:       time.UnixMicro(int64(binary.BigEndian.Uint64(h[16:24])) - btsnoopEpochDelta).UTC(),
			Data:            data,
		})
	}
	s.off, s.frame, s.smallRun = off, frame, smallRun
	b.Records, b.Frames = recs, frames
	return pos
}

// classifyEnd converts "the stream is over with `left` undecodable bytes
// buffered" into the Scanner-compatible terminal state: clean EOF at a
// boundary, mid-header or mid-payload truncation with Offset advanced to
// the death byte, or the underlying transport error.
func (s *BatchScanner) classifyEnd(left int) {
	switch {
	case left == 0:
		if s.rdErr == io.EOF {
			// Zero bytes at a record boundary: the clean end of a log.
			s.err = io.EOF
		} else {
			s.err = fmt.Errorf("%w: record header at offset %d: %w",
				ErrTruncated, s.off, s.rdErr)
		}
	case left < 24:
		hdrStart := s.off
		s.off += int64(left)
		s.err = fmt.Errorf("%w: record header at offset %d: %w",
			ErrTruncated, hdrStart, eofUnexpected(s.rdErr))
	default:
		// A full, well-formed header whose payload never arrived
		// (corrupt headers were already caught in the decode sweep).
		s.off += int64(left)
		s.err = fmt.Errorf("%w: record data at offset %d: %w",
			ErrTruncated, s.off, eofUnexpected(s.rdErr))
	}
}

// ScanBatch advances to the next batch of records, reusing b's buffer
// and Records slice. It returns false at end of stream or on error; Err
// distinguishes the two. After false, Offset reports where the stream
// ended or died, exactly as Scanner does.
func (s *BatchScanner) ScanBatch(b *RecordBatch) bool {
	return s.scanBatch(b, nil)
}

// ScanBatchKeep is ScanBatch with the caller's prefilter pushed below
// record materialization: each complete record's payload is offered to
// keep during the header sweep, and rejected records are skipped at the
// cost of the sweep alone — no Record struct, no timestamp conversion,
// no append. Frame numbering, offsets, and error classification are
// identical to an unfiltered scan over the same stream; kept records'
// absolute frame numbers land in b.Frames since a filtered batch is no
// longer contiguous. keep must not retain the payload slice — it
// aliases the scan buffer.
//
// Liveness: a call that sweeps complete records returns true even when
// keep rejected every one of them — the batch is empty but Offset and
// Frame have advanced, so a live consumer (the sentinel pipeline) can
// account for rejected traffic without waiting for the next relevant
// record. Callers must therefore tolerate len(b.Records) == 0.
func (s *BatchScanner) ScanBatchKeep(b *RecordBatch, keep func(payload []byte) bool) bool {
	return s.scanBatch(b, keep)
}

func (s *BatchScanner) scanBatch(b *RecordBatch, keep func([]byte) bool) bool {
	b.Records = b.Records[:0]
	b.Frames = b.Frames[:0]
	b.First = s.frame + 1
	if s.err != nil {
		return false
	}
	if s.all != nil {
		return s.scanBytes(b, keep)
	}
	// Shrink valve, mirroring Scanner: one giant record grows the batch
	// buffer, and after shrinkAfter consecutive small records a buffer
	// beyond twice the block size is traded for a fresh one so idle
	// sentinel streams don't pin max-record ballast.
	if s.smallRun >= shrinkAfter && cap(b.buf) > 2*s.batchBytes {
		b.buf = nil
		s.smallRun = 0
	}
	if cap(b.buf) < s.batchBytes {
		b.buf = make([]byte, 0, s.batchBytes)
	}
	buf := append(b.buf[:0], s.tail...)
	s.tail = s.tail[:0]
	pos := 0

	if !s.started {
		for len(buf) < 16 && s.rdErr == nil {
			buf = s.fill(buf)
		}
		if len(buf) < 16 {
			s.off += int64(len(buf))
			s.err = fmt.Errorf("%w: file header: %w", ErrTruncated, eofUnexpected(s.rdErr))
			b.buf = buf
			return false
		}
		dl, err := parseFileHeader((*[16]byte)(buf[:16]))
		s.off += 16
		if err != nil {
			s.err = err
			b.buf = buf
			return false
		}
		s.datalink = dl
		s.started = true
		pos = 16
	}

	frameStart := s.frame
	for {
		pos = s.decodeSpan(b, buf, pos, keep)
		if s.err != nil {
			// Corrupt header: records decoded before it are still
			// delivered; the staged error surfaces on the next call.
			b.buf = buf
			return len(b.Records) > 0
		}

		if len(b.Records) > 0 || (keep != nil && s.frame > frameStart) {
			// Hand the batch out — possibly empty under keep, if the
			// sweep advanced past rejected records only; the partial
			// element (if any) carries over to the next batch's buffer.
			s.tail = append(s.tail[:0], buf[pos:]...)
			b.buf = buf
			return true
		}

		if s.rdErr == nil {
			// No complete record buffered and bytes may still come:
			// compact the partial element to the front and read more.
			if pos > 0 {
				n := copy(buf, buf[pos:])
				buf = buf[:n]
				pos = 0
			}
			buf = s.fill(buf)
			continue
		}

		b.buf = buf
		s.classifyEnd(len(buf) - pos)
		return false
	}
}

// scanBytes is the zero-copy in-memory mode: records are decoded
// directly over the input slice, one maxBatchRecords-sized batch per
// call, with no buffer fills or tail carries.
func (s *BatchScanner) scanBytes(b *RecordBatch, keep func([]byte) bool) bool {
	if !s.started {
		if len(s.all) < 16 {
			s.off = int64(len(s.all))
			s.err = fmt.Errorf("%w: file header: %w", ErrTruncated, io.ErrUnexpectedEOF)
			return false
		}
		dl, err := parseFileHeader((*[16]byte)(s.all[:16]))
		s.off = 16
		if err != nil {
			s.err = err
			return false
		}
		s.datalink = dl
		s.started = true
		s.pos = 16
	}
	frameStart := s.frame
	s.pos = s.decodeSpan(b, s.all, s.pos, keep)
	if s.err != nil {
		return len(b.Records) > 0
	}
	if len(b.Records) > 0 || (keep != nil && s.frame > frameStart) {
		return true
	}
	s.classifyEnd(len(s.all) - s.pos)
	return false
}

// Err returns the first error encountered, or nil if the stream ended
// cleanly at a record boundary — the same classification contract as
// Scanner.Err.
func (s *BatchScanner) Err() error {
	if s.err == io.EOF {
		return nil
	}
	return s.err
}

// Offset returns the byte offset reached in the stream: after a
// successful ScanBatch, the end of the batch's last record; after false,
// the position at which the stream ended or died (the exact death byte
// for truncation, the start of the offending header for framing errors).
func (s *BatchScanner) Offset() int64 { return s.off }

// Frame returns the 1-based frame number of the last record delivered.
func (s *BatchScanner) Frame() int { return s.frame }

// Datalink returns the stream's datalink type; valid after the first
// ScanBatch call.
func (s *BatchScanner) Datalink() uint32 { return s.datalink }

// Slab is an append-only arena for payloads that must outlive the batch
// (or scanner buffer) they were decoded into: Copy returns a stable
// copy carved from a large shared block, so retaining a million small
// payloads costs a few hundred block allocations instead of a million
// Clone calls. A Slab is not safe for concurrent use; the zero value is
// ready to go.
//
// Slab memory is reclaimed only when every copy carved from a block is
// unreachable — the right trade for "parse a capture, keep the
// records", the wrong one for retaining a handful of payloads from an
// unbounded stream (use Record.Clone there).
type Slab struct {
	block []byte
	chunk int
}

// defaultSlabChunk balances waste (a record never straddles blocks, so
// up to one maxRecord of tail waste per block) against allocation count.
const defaultSlabChunk = 256 << 10

// Copy returns a copy of p whose lifetime is independent of p's backing
// store. Copies of zero-length payloads share an empty non-nil slice.
func (s *Slab) Copy(p []byte) []byte {
	if len(p) == 0 {
		return []byte{}
	}
	if s.chunk == 0 {
		s.chunk = defaultSlabChunk
	}
	if len(p) > cap(s.block)-len(s.block) {
		size := s.chunk
		if len(p) > size {
			size = len(p)
		}
		s.block = make([]byte, 0, size)
	}
	start := len(s.block)
	s.block = append(s.block, p...)
	return s.block[start:len(s.block):len(s.block)]
}

// CloneInto returns a deep copy of the record with Data carved from the
// slab — the batch-era replacement for Clone when many records are
// retained at once.
func (r Record) CloneInto(s *Slab) Record {
	r.Data = s.Copy(r.Data)
	return r
}
