package snoop

import (
	"bytes"
	"reflect"
	"testing"
)

// TestResumeBatchScannerMatchesUnbroken: scanning a prefix with one
// scanner, then the remainder with ResumeBatchScanner seeded from the
// first scanner's terminal state, must deliver the same records, frame
// numbers, offsets, and terminal classification as one unbroken scan.
func TestResumeBatchScannerMatchesUnbroken(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Synthesize(&buf, SynthConfig{Records: 2000, Seed: 21}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	type frameRec struct {
		Frame int
		Rec   Record
	}
	scanAll := func(sc *BatchScanner) ([]frameRec, int64, int, error) {
		var out []frameRec
		var b RecordBatch
		for sc.ScanBatch(&b) {
			for i := range b.Records {
				out = append(out, frameRec{Frame: b.First + i, Rec: b.Records[i].Clone()})
			}
		}
		return out, sc.Offset(), sc.Frame(), sc.Err()
	}

	want, wantOff, wantFrame, wantErr := scanAll(NewBatchScanner(bytes.NewReader(data)))
	if wantErr != nil || len(want) != 2000 {
		t.Fatalf("baseline scan: %d records, err %v", len(want), wantErr)
	}

	for _, cut := range []int{17, len(data) / 3, len(data) / 2, len(data) - 9} {
		first := NewBatchScanner(bytes.NewReader(data[:cut]))
		var got []frameRec
		var b RecordBatch
		for first.ScanBatch(&b) {
			for i := range b.Records {
				got = append(got, frameRec{Frame: b.First + i, Rec: b.Records[i].Clone()})
			}
		}
		// The prefix scan ends truncated (or clean at a boundary); resume
		// from its consumed offset — the caller re-delivers the tail bytes.
		off, frame, dl := first.Offset(), first.Frame(), first.Datalink()
		if first.Err() == nil {
			if off != int64(cut) {
				t.Fatalf("cut %d: clean prefix ended at %d", cut, off)
			}
		} else {
			// Mid-record death: Offset includes the dead partial span, but
			// the consumed boundary — what a checkpoint records — is where
			// the last complete record ended.
			var boundary int64 = 16
			for _, fr := range got {
				boundary += 24 + int64(len(fr.Rec.Data))
			}
			off = boundary
		}

		rest, restOff, restFrame, restErr := scanAll(ResumeBatchScanner(bytes.NewReader(data[off:]), 8<<10, off, frame, dl))
		got = append(got, rest...)
		if restErr != nil {
			t.Fatalf("cut %d: resumed scan err %v", cut, restErr)
		}
		if restOff != wantOff || restFrame != wantFrame {
			t.Fatalf("cut %d: resumed terminal off/frame %d/%d, want %d/%d", cut, restOff, restFrame, wantOff, wantFrame)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: stitched records diverge from unbroken scan (%d vs %d records)", cut, len(got), len(want))
		}
	}
}
