package snoop

import (
	"bytes"
	"testing"
	"testing/iotest"
)

// FuzzReadAll throws arbitrary bytes at the btsnoop reader: no panics, no
// unbounded allocations, and anything accepted must re-serialize.
func FuzzReadAll(f *testing.F) {
	var seed bytes.Buffer
	w := NewWriter(&seed)
	_ = w.WriteRecord(Record{Data: []byte{0x01, 0x03, 0x0c, 0x00}, OriginalLength: 4})
	f.Add(seed.Bytes())
	f.Add([]byte("btsnoop\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, err := ReadAll(raw)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.WriteRecord(r); err != nil {
				t.Fatalf("re-serialize: %v", err)
			}
		}
	})
}

// FuzzScanner is the three-way differential: ReadAll, the incremental
// Scanner, and the BatchScanner must yield identical record sequences,
// frame numbers, final Offset, and error classification (clean EOF /
// ErrTruncated / ErrBadFraming / bad header) on arbitrary bytes, with no
// panics. Seeds cover truncation at the file header, record header, and
// payload boundaries, plus bad framing. The batch path additionally runs
// over a one-byte-per-Read stream to exercise every partial-buffer
// carry path.
func FuzzScanner(f *testing.F) {
	var seed bytes.Buffer
	w := NewWriter(&seed)
	_ = w.WriteRecord(Record{Data: []byte{0x01, 0x03, 0x0c, 0x00}, OriginalLength: 4})
	_ = w.WriteRecord(Record{Data: []byte{0x04, 0x01, 0x00}, OriginalLength: 3, Flags: FlagDirectionReceived})
	full := seed.Bytes()
	f.Add(full)
	for _, cut := range []int{0, 7, 15, 16, 17, 39, 40, 41, 43, len(full) - 1} {
		if cut >= 0 && cut < len(full) {
			f.Add(append([]byte(nil), full[:cut]...))
		}
	}
	bad := append([]byte(nil), full...)
	bad[16+3] = 2 // included length exceeds original: ErrBadFraming
	f.Add(bad)
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, readErr := ReadAll(raw)

		sc := NewScanner(bytes.NewReader(raw))
		var scanned []Record
		for sc.Scan() {
			if sc.Frame() != len(scanned)+1 {
				t.Fatalf("Scanner frame %d at position %d", sc.Frame(), len(scanned)+1)
			}
			scanned = append(scanned, sc.Record().Clone())
		}
		scanErr := sc.Err()
		if (readErr == nil) != (scanErr == nil) {
			t.Fatalf("ReadAll err=%v, Scanner err=%v", readErr, scanErr)
		}
		if len(scanned) != len(recs) {
			t.Fatalf("ReadAll %d records, Scanner %d", len(recs), len(scanned))
		}

		for name, bs := range map[string]*BatchScanner{
			"block":   NewBatchScanner(bytes.NewReader(raw)),
			"trickle": NewBatchScanner(iotest.OneByteReader(bytes.NewReader(raw))),
			"bytes":   NewBatchScannerBytes(raw),
		} {
			var (
				b    RecordBatch
				slab Slab
				got  []Record
			)
			for bs.ScanBatch(&b) {
				if b.First != len(got)+1 {
					t.Fatalf("%s: batch First=%d at position %d", name, b.First, len(got)+1)
				}
				for _, rec := range b.Records {
					got = append(got, rec.CloneInto(&slab))
				}
			}
			if gc, wc := errClass(bs.Err()), errClass(scanErr); gc != wc {
				t.Fatalf("%s: batch error %q (%v), scanner %q (%v)", name, gc, bs.Err(), wc, scanErr)
			}
			if bs.Offset() != sc.Offset() {
				t.Fatalf("%s: batch offset %d, scanner %d", name, bs.Offset(), sc.Offset())
			}
			if len(got) != len(scanned) {
				t.Fatalf("%s: batch %d records, scanner %d", name, len(got), len(scanned))
			}
			for i := range scanned {
				if !bytes.Equal(got[i].Data, scanned[i].Data) ||
					got[i].Flags != scanned[i].Flags ||
					got[i].OriginalLength != scanned[i].OriginalLength ||
					got[i].CumulativeDrops != scanned[i].CumulativeDrops ||
					!got[i].Timestamp.Equal(scanned[i].Timestamp) {
					t.Fatalf("%s: record %d differs:\n batch   %+v\n scanner %+v", name, i, got[i], scanned[i])
				}
			}
		}
	})
}

// FuzzExtractLinkKeys must tolerate arbitrary record contents.
func FuzzExtractLinkKeys(f *testing.F) {
	f.Add([]byte{0x01, 0x0b, 0x04, 0x16}, uint32(0))
	f.Fuzz(func(t *testing.T, data []byte, flags uint32) {
		recs := []Record{{Data: data, Flags: flags, OriginalLength: uint32(len(data))}}
		ExtractLinkKeys(recs)
		Summarize(recs)
	})
}
