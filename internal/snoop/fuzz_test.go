package snoop

import (
	"bytes"
	"testing"
)

// FuzzReadAll throws arbitrary bytes at the btsnoop reader: no panics, no
// unbounded allocations, and anything accepted must re-serialize.
func FuzzReadAll(f *testing.F) {
	var seed bytes.Buffer
	w := NewWriter(&seed)
	_ = w.WriteRecord(Record{Data: []byte{0x01, 0x03, 0x0c, 0x00}, OriginalLength: 4})
	f.Add(seed.Bytes())
	f.Add([]byte("btsnoop\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, err := ReadAll(raw)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.WriteRecord(r); err != nil {
				t.Fatalf("re-serialize: %v", err)
			}
		}
	})
}

// FuzzScanner runs the incremental reader against ReadAll on arbitrary
// bytes: both must accept the same record count and agree on whether the
// input is an error, with no panics. Seeds cover truncation at the file
// header, record header, and payload boundaries, plus bad framing.
func FuzzScanner(f *testing.F) {
	var seed bytes.Buffer
	w := NewWriter(&seed)
	_ = w.WriteRecord(Record{Data: []byte{0x01, 0x03, 0x0c, 0x00}, OriginalLength: 4})
	_ = w.WriteRecord(Record{Data: []byte{0x04, 0x01, 0x00}, OriginalLength: 3, Flags: FlagDirectionReceived})
	full := seed.Bytes()
	f.Add(full)
	for _, cut := range []int{0, 7, 15, 16, 17, 39, 40, 41, 43, len(full) - 1} {
		if cut >= 0 && cut < len(full) {
			f.Add(append([]byte(nil), full[:cut]...))
		}
	}
	bad := append([]byte(nil), full...)
	bad[16+3] = 2 // included length exceeds original: ErrBadFraming
	f.Add(bad)
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, readErr := ReadAll(raw)
		sc := NewScanner(bytes.NewReader(raw))
		n := 0
		for sc.Scan() {
			n++
		}
		scanErr := sc.Err()
		if (readErr == nil) != (scanErr == nil) {
			t.Fatalf("ReadAll err=%v, Scanner err=%v", readErr, scanErr)
		}
		if n != len(recs) {
			t.Fatalf("ReadAll %d records, Scanner %d", len(recs), n)
		}
	})
}

// FuzzExtractLinkKeys must tolerate arbitrary record contents.
func FuzzExtractLinkKeys(f *testing.F) {
	f.Add([]byte{0x01, 0x0b, 0x04, 0x16}, uint32(0))
	f.Fuzz(func(t *testing.T, data []byte, flags uint32) {
		recs := []Record{{Data: data, Flags: flags, OriginalLength: uint32(len(data))}}
		ExtractLinkKeys(recs)
		Summarize(recs)
	})
}
