package snoop

import (
	"bytes"
	"testing"
)

// FuzzReadAll throws arbitrary bytes at the btsnoop reader: no panics, no
// unbounded allocations, and anything accepted must re-serialize.
func FuzzReadAll(f *testing.F) {
	var seed bytes.Buffer
	w := NewWriter(&seed)
	_ = w.WriteRecord(Record{Data: []byte{0x01, 0x03, 0x0c, 0x00}, OriginalLength: 4})
	f.Add(seed.Bytes())
	f.Add([]byte("btsnoop\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, err := ReadAll(raw)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.WriteRecord(r); err != nil {
				t.Fatalf("re-serialize: %v", err)
			}
		}
	})
}

// FuzzExtractLinkKeys must tolerate arbitrary record contents.
func FuzzExtractLinkKeys(f *testing.F) {
	f.Add([]byte{0x01, 0x0b, 0x04, 0x16}, uint32(0))
	f.Fuzz(func(t *testing.T, data []byte, flags uint32) {
		recs := []Record{{Data: data, Flags: flags, OriginalLength: uint32(len(data))}}
		ExtractLinkKeys(recs)
		Summarize(recs)
	})
}
