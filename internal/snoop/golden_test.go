package snoop

import (
	"bytes"
	"encoding/hex"
	"testing"
	"time"
)

// TestGoldenFileBytes pins the exact on-disk encoding of a one-record
// btsnoop file, so accidental format drift (endianness, epoch constant,
// header layout) fails loudly. The expected bytes were computed from the
// RFC 1761 definitions: big-endian fields, "btsnoop\0" magic, version 1,
// datalink 1002 (H4), and timestamps in microseconds since year 0
// (offset 0x00dcddb30f2f8000 from the Unix epoch).
func TestGoldenFileBytes(t *testing.T) {
	// One HCI_Reset command (01 03 0c 00) captured at the Unix epoch.
	rec := Record{
		OriginalLength: 4,
		Flags:          FlagCommandEvent,
		Timestamp:      time.Unix(0, 0).UTC(),
		Data:           []byte{0x01, 0x03, 0x0c, 0x00},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(rec); err != nil {
		t.Fatal(err)
	}

	want := "" +
		"6274736e6f6f7000" + // "btsnoop\0"
		"00000001" + // version 1
		"000003ea" + // datalink 1002 (H4)
		"00000004" + // original length
		"00000004" + // included length
		"00000002" + // flags: command/event, sent
		"00000000" + // cumulative drops
		"00dcddb30f2f8000" + // timestamp: unix epoch in btsnoop µs
		"01030c00" // the H4 packet
	got := hex.EncodeToString(buf.Bytes())
	if got != want {
		t.Fatalf("golden mismatch:\n got  %s\n want %s", got, want)
	}

	// And it parses back identically.
	recs, err := ReadAll(buf.Bytes())
	if err != nil || len(recs) != 1 {
		t.Fatalf("parse back: %v %d", err, len(recs))
	}
	if !recs[0].Timestamp.Equal(rec.Timestamp) || !bytes.Equal(recs[0].Data, rec.Data) {
		t.Fatalf("round trip: %+v", recs[0])
	}
}

// TestReceivedFlagGolden pins the direction bit.
func TestReceivedFlagGolden(t *testing.T) {
	r := Record{Flags: FlagDirectionReceived}
	if !r.Received() {
		t.Fatal("direction bit")
	}
	if (Record{Flags: FlagCommandEvent}).Received() {
		t.Fatal("command flag must not read as received")
	}
}
