package snoop

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
	"testing/iotest"
)

// errClass buckets a scanner-terminal error the way callers triage them;
// the batch and incremental scanners must always land in the same bucket.
func errClass(err error) string {
	switch {
	case err == nil:
		return "clean"
	case errors.Is(err, ErrBadFraming):
		return "bad-framing"
	case errors.Is(err, ErrBadMagic):
		return "bad-magic"
	case errors.Is(err, ErrBadVersion):
		return "bad-version"
	case errors.Is(err, ErrBadDatalink):
		return "bad-datalink"
	case errors.Is(err, io.ErrUnexpectedEOF):
		return "truncated"
	default:
		return "error"
	}
}

// collectBatches drains a BatchScanner, checking per-batch frame
// numbering, and returns deep-copied records plus the scanner's final
// state.
func collectBatches(t testing.TB, sc *BatchScanner) []Record {
	t.Helper()
	var (
		out  []Record
		slab Slab
		b    RecordBatch
	)
	for sc.ScanBatch(&b) {
		if len(b.Records) == 0 {
			t.Fatal("ScanBatch returned true with an empty batch")
		}
		if b.First != len(out)+1 {
			t.Fatalf("batch First=%d at position %d", b.First, len(out)+1)
		}
		for _, rec := range b.Records {
			out = append(out, rec.CloneInto(&slab))
		}
		if sc.Frame() != len(out) {
			t.Fatalf("Frame()=%d after %d records", sc.Frame(), len(out))
		}
	}
	return out
}

func recordsEqual(t testing.TB, name string, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", name, len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i].Data, want[i].Data) ||
			got[i].Flags != want[i].Flags ||
			got[i].OriginalLength != want[i].OriginalLength ||
			got[i].CumulativeDrops != want[i].CumulativeDrops ||
			!got[i].Timestamp.Equal(want[i].Timestamp) {
			t.Fatalf("%s: record %d differs:\n batch %+v\n want  %+v", name, i, got[i], want[i])
		}
	}
}

func TestBatchScannerMatchesScanner(t *testing.T) {
	captures := map[string][]byte{
		"sample": serializeRecords(t, fixLengths(sampleRecords())),
	}
	captures["synthetic"], _ = synthCapture(t, 5000, 7)

	for name, data := range captures {
		sc := NewScanner(bytes.NewReader(data))
		var want []Record
		for sc.Scan() {
			want = append(want, sc.Record().Clone())
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("%s: scanner: %v", name, err)
		}

		for mode, bs := range map[string]*BatchScanner{
			"stream": NewBatchScanner(bytes.NewReader(data)),
			"bytes":  NewBatchScannerBytes(data),
		} {
			got := collectBatches(t, bs)
			if err := bs.Err(); err != nil {
				t.Fatalf("%s/%s: batch scanner: %v", name, mode, err)
			}
			recordsEqual(t, name+"/"+mode, got, want)
			if bs.Offset() != sc.Offset() {
				t.Fatalf("%s/%s: offset %d, scanner %d", name, mode, bs.Offset(), sc.Offset())
			}
			if bs.Datalink() != sc.Datalink() {
				t.Fatalf("%s/%s: datalink %d, scanner %d", name, mode, bs.Datalink(), sc.Datalink())
			}
		}
	}
}

// TestBatchScannerTrickleLiveness feeds the stream one byte per Read: a
// live socket dribbling records must still yield every record (ScanBatch
// cannot stall waiting for a full block), with identical results.
func TestBatchScannerTrickleLiveness(t *testing.T) {
	data, _ := synthCapture(t, 200, 3)
	want, err := ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBatchScanner(iotest.OneByteReader(bytes.NewReader(data)))
	got := collectBatches(t, bs)
	if err := bs.Err(); err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, "trickle", got, want)
	if bs.Offset() != int64(len(data)) {
		t.Fatalf("offset %d, want %d", bs.Offset(), len(data))
	}
}

// TestBatchScannerTruncationBoundaries cuts a capture at every byte
// offset: the batch scanner must agree with the incremental Scanner on
// record count, final Offset, and error class at every cut — the
// death-offset contract blapd's stream-end events rely on.
func TestBatchScannerTruncationBoundaries(t *testing.T) {
	data, _ := synthCapture(t, 40, 21)
	for cut := 0; cut <= len(data); cut++ {
		prefix := data[:cut]

		sc := NewScanner(bytes.NewReader(prefix))
		wantN := 0
		for sc.Scan() {
			wantN++
		}

		for mode, bs := range map[string]*BatchScanner{
			"stream": NewBatchScanner(bytes.NewReader(prefix)),
			"bytes":  NewBatchScannerBytes(prefix),
		} {
			var b RecordBatch
			gotN := 0
			for bs.ScanBatch(&b) {
				gotN += len(b.Records)
			}
			if gotN != wantN {
				t.Fatalf("cut %d/%s: batch %d records, scanner %d", cut, mode, gotN, wantN)
			}
			if got, want := errClass(bs.Err()), errClass(sc.Err()); got != want {
				t.Fatalf("cut %d/%s: batch error %q (%v), scanner %q (%v)",
					cut, mode, got, bs.Err(), want, sc.Err())
			}
			if bs.Offset() != sc.Offset() {
				t.Fatalf("cut %d/%s: batch offset %d, scanner %d", cut, mode, bs.Offset(), sc.Offset())
			}
			// Scanning past the failure must stay stopped.
			if bs.ScanBatch(&b) {
				t.Fatalf("cut %d/%s: ScanBatch returned true after stop", cut, mode)
			}
		}
	}
}

// TestBatchScannerBadFraming pins the two framing-error contracts: the
// records before a corrupt header are still delivered, and Offset rewinds
// to the offending header's start.
func TestBatchScannerBadFraming(t *testing.T) {
	recs := fixLengths(sampleRecords())
	data := serializeRecords(t, recs)
	bad := append([]byte(nil), data...)
	secondHdr := 16 + 24 + len(recs[0].Data)
	bad[secondHdr+3] = 1 // original length = 1 < included: bad framing

	bs := NewBatchScanner(bytes.NewReader(bad))
	got := collectBatches(t, bs)
	if len(got) != 1 {
		t.Fatalf("delivered %d records before the bad header, want 1", len(got))
	}
	err := bs.Err()
	if !errors.Is(err, ErrBadFraming) {
		t.Fatalf("want ErrBadFraming, got %v", err)
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("framing error misclassified as truncation: %v", err)
	}
	if got := bs.Offset(); got != int64(secondHdr) {
		t.Fatalf("Offset() = %d, want bad header start %d", got, secondHdr)
	}
}

// TestBatchScannerGiantRecordAndShrink: a record larger than the block
// size must still decode (the batch buffer grows), and a long run of
// small records afterwards must release the high-water allocation.
func TestBatchScannerGiantRecordAndShrink(t *testing.T) {
	const giant = 300 << 10 // > defaultBatchBytes
	recs := []Record{{Flags: FlagCommandEvent, Timestamp: CaptureBase, Data: make([]byte, giant)}}
	for i := 0; i < shrinkAfter+8; i++ {
		recs = append(recs, Record{Flags: FlagCommandEvent, Timestamp: CaptureBase, Data: []byte{0x01, 0x03, 0x0c, 0x00}})
	}
	data := serializeRecords(t, fixLengths(recs))
	want, err := ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}

	bs := NewBatchScanner(bytes.NewReader(data))
	var (
		b    RecordBatch
		slab Slab
		got  []Record
	)
	peak := 0
	for bs.ScanBatch(&b) {
		if cap(b.buf) > peak {
			peak = cap(b.buf)
		}
		for _, rec := range b.Records {
			got = append(got, rec.CloneInto(&slab))
		}
	}
	if err := bs.Err(); err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, "giant", got, want)
	if peak < giant {
		t.Fatalf("batch buffer peaked at %d, the giant record needed %d", peak, giant)
	}
	if cap(b.buf) > 2*defaultBatchBytes {
		t.Fatalf("batch buffer still holds %d bytes after %d small records",
			cap(b.buf), shrinkAfter+8)
	}
}

// TestBatchValidAcrossHandoff models the sentinel ring: records decoded
// into batch A must stay intact while the scanner fills batch B.
func TestBatchValidAcrossHandoff(t *testing.T) {
	data, _ := synthCapture(t, 3000, 11)
	want, err := ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBatchScannerSize(bytes.NewReader(data), 4<<10)
	batches := [2]RecordBatch{}
	var (
		got  []Record
		slab Slab
	)
	i := 0
	for {
		prev := &batches[i%2]
		next := &batches[(i+1)%2]
		ok := bs.ScanBatch(next)
		// Copy the previous batch only after the next fill, proving the
		// fill did not clobber it.
		for _, rec := range prev.Records {
			got = append(got, rec.CloneInto(&slab))
		}
		if !ok {
			break
		}
		i++
	}
	if err := bs.Err(); err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, "handoff", got, want)
}

func TestSlabCopy(t *testing.T) {
	var s Slab
	a := s.Copy([]byte{1, 2, 3})
	b := s.Copy(bytes.Repeat([]byte{9}, 4))
	empty := s.Copy(nil)
	if empty == nil || len(empty) != 0 {
		t.Fatalf("empty copy: %v", empty)
	}
	// Appending to one copy must not bleed into its neighbor.
	a = append(a, 0xFF)
	if b[0] != 9 {
		t.Fatal("slab copies alias each other")
	}
	if !bytes.Equal(a[:3], []byte{1, 2, 3}) {
		t.Fatal("copy lost its contents")
	}
	// A payload larger than the chunk gets its own block.
	big := s.Copy(make([]byte, defaultSlabChunk+1))
	if len(big) != defaultSlabChunk+1 {
		t.Fatalf("big copy length %d", len(big))
	}
}

// TestRewritePreservesDatalink is the regression test for the header
// restamping bug: Rewrite used to emit DatalinkH4 regardless of the
// source stream's datalink.
func TestRewritePreservesDatalink(t *testing.T) {
	for _, dl := range []uint32{DatalinkH1, DatalinkH4, DatalinkBCSP, DatalinkH5} {
		var src bytes.Buffer
		w := NewWriter(&src)
		w.SetDatalink(dl)
		if err := w.WriteRecord(Record{Data: []byte{0x01, 0x03, 0x0c, 0x00}, OriginalLength: 4}); err != nil {
			t.Fatal(err)
		}

		var out bytes.Buffer
		kept, dropped, err := Rewrite(&out, bytes.NewReader(src.Bytes()), nil)
		if err != nil || kept != 1 || dropped != 0 {
			t.Fatalf("datalink %d: kept=%d dropped=%d err=%v", dl, kept, dropped, err)
		}
		if !bytes.Equal(out.Bytes(), src.Bytes()) {
			t.Fatalf("datalink %d: rewrite is not a byte-identical round-trip", dl)
		}
		r := NewReader(bytes.NewReader(out.Bytes()))
		if _, err := r.ReadRecord(); err != nil {
			t.Fatalf("datalink %d: read back: %v", dl, err)
		}
		if r.Datalink() != dl {
			t.Fatalf("rewrite stamped datalink %d, want %d", r.Datalink(), dl)
		}

		// Header-only sources keep their datalink too.
		var hdrOnly, out2 bytes.Buffer
		w2 := NewWriter(&hdrOnly)
		w2.SetDatalink(dl)
		if err := w2.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Rewrite(&out2, bytes.NewReader(hdrOnly.Bytes()), nil); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out2.Bytes(), hdrOnly.Bytes()) {
			t.Fatalf("datalink %d: header-only rewrite differs", dl)
		}
	}
}

// TestSetDatalinkLatchedAfterHeader: once the header is out, the
// datalink cannot change mid-file.
func TestSetDatalinkLatchedAfterHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(Record{Data: []byte{0x01, 0x03, 0x0c, 0x00}, OriginalLength: 4}); err != nil {
		t.Fatal(err)
	}
	w.SetDatalink(DatalinkH1)
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.ReadRecord(); err != nil {
		t.Fatal(err)
	}
	if r.Datalink() != DatalinkH4 {
		t.Fatalf("late SetDatalink rewrote the header: %d", r.Datalink())
	}
}

func BenchmarkBatchScanner(b *testing.B) {
	data, stats := synthCapture(b, 250000, 9)
	newScanner := map[string]func() *BatchScanner{
		"stream": func() *BatchScanner { return NewBatchScannerSize(bytes.NewReader(data), 256<<10) },
		"bytes":  func() *BatchScanner { return NewBatchScannerBytes(data) },
	}
	for _, mode := range []string{"stream", "bytes"} {
		b.Run(mode, func(b *testing.B) {
			b.SetBytes(stats.Bytes)
			b.ReportAllocs()
			var batch RecordBatch
			for i := 0; i < b.N; i++ {
				sc := newScanner[mode]()
				n := 0
				for sc.ScanBatch(&batch) {
					n += len(batch.Records)
				}
				if err := sc.Err(); err != nil || n != stats.Records {
					b.Fatalf("records=%d err=%v", n, err)
				}
			}
		})
	}
}

// TestScanBatchKeepMatchesFiltering pins the in-sweep prefilter to the
// obvious reference: scanning everything and filtering afterwards. Kept
// records, their absolute frame numbers, the final offset, and the error
// class must all match — on clean captures and on every truncation of
// one — in both stream and bytes modes.
func TestScanBatchKeepMatchesFiltering(t *testing.T) {
	data, _ := synthCapture(t, 2000, 13)
	keep := func(p []byte) bool { return len(p) > 0 && p[0] == 0x04 } // events only

	for _, cut := range []int{len(data), len(data) - 1, len(data) - 11, len(data) / 2, 40, 16, 15, 0} {
		trunc := data[:cut]

		ref := NewBatchScannerBytes(trunc)
		var want []Record
		var wantFrames []int
		var rb RecordBatch
		for ref.ScanBatch(&rb) {
			for i := range rb.Records {
				if keep(rb.Records[i].Data) {
					want = append(want, rb.Records[i].Clone())
					wantFrames = append(wantFrames, rb.First+i)
				}
			}
		}

		for mode, sc := range map[string]*BatchScanner{
			"stream":  NewBatchScannerSize(bytes.NewReader(trunc), 4<<10),
			"trickle": NewBatchScanner(iotest.OneByteReader(bytes.NewReader(trunc))),
			"bytes":   NewBatchScannerBytes(trunc),
		} {
			var got []Record
			var frames []int
			var b RecordBatch
			lastFrame := 0
			for sc.ScanBatchKeep(&b, keep) {
				// Empty batches are legal (a swept block of rejected
				// records) but must always carry frame progress.
				if len(b.Records) == 0 && sc.Frame() <= lastFrame {
					t.Fatalf("cut=%d %s: empty batch without progress", cut, mode)
				}
				lastFrame = sc.Frame()
				if len(b.Frames) != len(b.Records) {
					t.Fatalf("cut=%d %s: %d frames for %d records", cut, mode, len(b.Frames), len(b.Records))
				}
				for i := range b.Records {
					got = append(got, b.Records[i].Clone())
					frames = append(frames, b.Frames[i])
				}
			}
			if gc, wc := errClass(sc.Err()), errClass(ref.Err()); gc != wc {
				t.Fatalf("cut=%d %s: error class %q, unfiltered %q", cut, mode, gc, wc)
			}
			if sc.Offset() != ref.Offset() {
				t.Fatalf("cut=%d %s: offset %d, unfiltered %d", cut, mode, sc.Offset(), ref.Offset())
			}
			if sc.Frame() != ref.Frame() {
				t.Fatalf("cut=%d %s: frame %d, unfiltered %d", cut, mode, sc.Frame(), ref.Frame())
			}
			recordsEqual(t, fmt.Sprintf("cut=%d/%s", cut, mode), got, want)
			if !reflect.DeepEqual(frames, wantFrames) {
				t.Fatalf("cut=%d %s: kept frames diverge:\n got %v\nwant %v", cut, mode, frames, wantFrames)
			}
		}
	}
}

// TestScanBatchKeepRejectAll: a filter that rejects everything must
// still consume the stream, end cleanly, and report the full offset —
// yielding only empty batches, each one representing forward progress
// (the liveness contract the sentinel pipeline's counters rely on).
func TestScanBatchKeepRejectAll(t *testing.T) {
	data, stats := synthCapture(t, 500, 2)
	for mode, sc := range map[string]*BatchScanner{
		"stream": NewBatchScanner(bytes.NewReader(data)),
		"bytes":  NewBatchScannerBytes(data),
	} {
		var b RecordBatch
		lastFrame := 0
		for sc.ScanBatchKeep(&b, func([]byte) bool { return false }) {
			if len(b.Records) != 0 {
				t.Fatalf("%s: reject-all yielded %d records", mode, len(b.Records))
			}
			if sc.Frame() <= lastFrame {
				t.Fatalf("%s: empty batch without progress at frame %d", mode, lastFrame)
			}
			lastFrame = sc.Frame()
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if sc.Offset() != int64(len(data)) || sc.Frame() != stats.Records {
			t.Fatalf("%s: offset=%d frame=%d, want %d/%d", mode, sc.Offset(), sc.Frame(), len(data), stats.Records)
		}
	}
}
