package snoop

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/bt"
	"repro/internal/hci"
)

// synthCapture builds a small deterministic synthetic capture for tests.
func synthCapture(t testing.TB, records int, seed int64) ([]byte, SynthStats) {
	t.Helper()
	var buf bytes.Buffer
	stats, err := Synthesize(&buf, SynthConfig{Records: records, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), stats
}

func serializeRecords(t testing.TB, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestScannerMatchesReadAll(t *testing.T) {
	captures := map[string][]byte{
		"sample": serializeRecords(t, fixLengths(sampleRecords())),
	}
	captures["synthetic"], _ = synthCapture(t, 2000, 7)

	for name, data := range captures {
		want, err := ReadAll(data)
		if err != nil {
			t.Fatalf("%s: ReadAll: %v", name, err)
		}
		sc := NewScanner(bytes.NewReader(data))
		var got []Record
		for sc.Scan() {
			if sc.Frame() != len(got)+1 {
				t.Fatalf("%s: frame %d at position %d", name, sc.Frame(), len(got))
			}
			got = append(got, sc.Record().Clone())
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("%s: scanner: %v", name, err)
		}
		if sc.Datalink() != DatalinkH4 {
			t.Fatalf("%s: datalink %d", name, sc.Datalink())
		}
		if len(got) != len(want) {
			t.Fatalf("%s: scanner %d records, ReadAll %d", name, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i].Data, want[i].Data) ||
				got[i].Flags != want[i].Flags ||
				got[i].OriginalLength != want[i].OriginalLength ||
				got[i].CumulativeDrops != want[i].CumulativeDrops ||
				!got[i].Timestamp.Equal(want[i].Timestamp) {
				t.Fatalf("%s: record %d differs:\n scanner %+v\n readall %+v", name, i, got[i], want[i])
			}
		}
	}
}

// TestScannerTruncationBoundaries truncates a valid capture at every byte
// offset and checks that Scanner and ReadAll agree on the record count
// and on whether the prefix is an error.
func TestScannerTruncationBoundaries(t *testing.T) {
	data := serializeRecords(t, fixLengths(sampleRecords()))
	for cut := 0; cut <= len(data); cut++ {
		prefix := data[:cut]
		want, wantErr := ReadAll(prefix)

		sc := NewScanner(bytes.NewReader(prefix))
		got := 0
		for sc.Scan() {
			got++
		}
		gotErr := sc.Err()

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("cut %d: ReadAll err %v, Scanner err %v", cut, wantErr, gotErr)
		}
		if got != len(want) {
			t.Fatalf("cut %d: ReadAll %d records, Scanner %d", cut, len(want), got)
		}
		// Scanning past the failure must stay stopped.
		if sc.Scan() {
			t.Fatalf("cut %d: Scan returned true after stop", cut)
		}
	}
}

// TestScannerClassifiesDeathOffsets cuts a capture at every byte offset:
// a cut on a record boundary is a cleanly closed log (nil Err), any
// other cut is mid-record truncation that must wrap io.ErrUnexpectedEOF
// (and still ErrTruncated for older callers), with Offset reporting
// exactly where the bytes ran out.
func TestScannerClassifiesDeathOffsets(t *testing.T) {
	data, _ := synthCapture(t, 50, 21)

	boundaries := map[int64]bool{16: true} // after the file header
	sc := NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		boundaries[sc.Offset()] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if got := sc.Offset(); got != int64(len(data)) {
		t.Fatalf("full scan offset %d, want %d", got, len(data))
	}

	for cut := 0; cut <= len(data); cut++ {
		sc := NewScanner(bytes.NewReader(data[:cut]))
		for sc.Scan() {
		}
		err := sc.Err()
		if boundaries[int64(cut)] {
			if err != nil {
				t.Fatalf("cut %d (boundary): unexpected error %v", cut, err)
			}
		} else {
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d: want io.ErrUnexpectedEOF in chain, got %v", cut, err)
			}
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d: want ErrTruncated in chain, got %v", cut, err)
			}
			if errors.Is(err, ErrBadFraming) {
				t.Fatalf("cut %d: truncation misclassified as framing error: %v", cut, err)
			}
		}
		if got := sc.Offset(); got != int64(cut) {
			t.Fatalf("cut %d: Offset() = %d", cut, got)
		}
	}
}

// TestScannerBadFramingOffset pins the failure offset for a misframed
// record to the start of its header, not wherever reading stopped.
func TestScannerBadFramingOffset(t *testing.T) {
	recs := fixLengths(sampleRecords())
	data := serializeRecords(t, recs)
	bad := append([]byte(nil), data...)
	// Second record's header begins after the file header plus the first
	// record; claim original < included there.
	secondHdr := 16 + 24 + len(recs[0].Data)
	bad[secondHdr+3] = 1 // original length = 1, included length unchanged

	sc := NewScanner(bytes.NewReader(bad))
	n := 0
	for sc.Scan() {
		n++
	}
	if n != 1 {
		t.Fatalf("scanned %d records before the bad header, want 1", n)
	}
	err := sc.Err()
	if !errors.Is(err, ErrBadFraming) {
		t.Fatalf("want ErrBadFraming, got %v", err)
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("framing error misclassified as truncation: %v", err)
	}
	if got := sc.Offset(); got != int64(secondHdr) {
		t.Fatalf("Offset() = %d, want bad header start %d", got, secondHdr)
	}
}

func TestFramingValidationRejectsInflatedLength(t *testing.T) {
	data := serializeRecords(t, []Record{
		{Data: []byte{0x01, 0x03, 0x0c, 0x00}, OriginalLength: 4},
	})
	// Record header starts at byte 16: original length [0:4], included
	// length [4:8], both big-endian. Claim more captured than original.
	bad := append([]byte(nil), data...)
	bad[16+3] = 2 // original length = 2, included stays 4

	if _, err := ReadAll(bad); !errors.Is(err, ErrBadFraming) {
		t.Errorf("ReadAll: want ErrBadFraming, got %v", err)
	}
	sc := NewScanner(bytes.NewReader(bad))
	for sc.Scan() {
	}
	if err := sc.Err(); !errors.Is(err, ErrBadFraming) {
		t.Errorf("Scanner: want ErrBadFraming, got %v", err)
	}
}

func TestWriterDefaultsOriginalLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	wire := []byte{0x01, 0x03, 0x0c, 0x00}
	if err := w.WriteRecord(Record{Data: wire}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].OriginalLength != uint32(len(wire)) {
		t.Fatalf("original length %d, want %d", recs[0].OriginalLength, len(wire))
	}
	if recs[0].Truncated() {
		t.Fatal("defaulted record must not read as truncated")
	}
}

func TestRewriteStreamsFilter(t *testing.T) {
	key := bt.MustLinkKey("c4f16e949f04ee9c0fd6b1330289c324")
	addr := bt.MustBDADDR("00:1a:7d:da:71:0a")
	recs := fixLengths([]Record{
		{Flags: FlagCommandEvent, Data: hci.EncodeCommand(&hci.LinkKeyRequestReply{Addr: addr, Key: key}).Wire()},
		{Flags: FlagCommandEvent, Data: hci.EncodeCommand(&hci.AuthenticationRequested{Handle: 3}).Wire()},
		{Flags: FlagCommandEvent | FlagDirectionReceived, Data: hci.EncodeEvent(&hci.LinkKeyNotification{Addr: addr, Key: key}).Wire()},
	})
	src := serializeRecords(t, recs)

	var out bytes.Buffer
	kept, dropped, err := Rewrite(&out, bytes.NewReader(src), LinkKeyFilter)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 3 || dropped != 0 {
		t.Fatalf("kept=%d dropped=%d", kept, dropped)
	}
	filtered, err := ReadAll(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if hits := ExtractLinkKeys(filtered); len(hits) != 0 {
		t.Fatalf("filter leaked %d keys through Rewrite", len(hits))
	}
	if !filtered[0].Truncated() || !filtered[2].Truncated() {
		t.Fatal("key carriers must read as truncated after filtering")
	}

	// Dropping filter: keep nothing.
	out.Reset()
	kept, dropped, err = Rewrite(&out, bytes.NewReader(src), func(Record) (Record, bool) { return Record{}, false })
	if err != nil || kept != 0 || dropped != 3 {
		t.Fatalf("drop-all: kept=%d dropped=%d err=%v", kept, dropped, err)
	}

	// Nil filter: verbatim copy.
	out.Reset()
	if _, _, err := Rewrite(&out, bytes.NewReader(src), nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), src) {
		t.Fatal("nil filter must copy the capture verbatim")
	}
}

func TestSynthesizeDeterministicAndScannable(t *testing.T) {
	a, stats := synthCapture(t, 5000, 42)
	b, stats2 := synthCapture(t, 5000, 42)
	if !bytes.Equal(a, b) {
		t.Fatal("same config must produce byte-identical captures")
	}
	if stats != stats2 {
		t.Fatalf("stats differ: %+v vs %+v", stats, stats2)
	}
	if stats.Records != 5000 {
		t.Fatalf("records %d, want 5000", stats.Records)
	}
	if int64(len(a)) != stats.Bytes {
		t.Fatalf("stats.Bytes %d, file %d", stats.Bytes, len(a))
	}
	if stats.Sessions == 0 || stats.KeyExposures == 0 || stats.BlockedSessions == 0 ||
		stats.StalledSessions == 0 || stats.FailedConnects == 0 {
		t.Fatalf("capture missing scenario coverage: %+v", stats)
	}

	c, _ := synthCapture(t, 5000, 43)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds must differ")
	}

	hits, err := ScanLinkKeys(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != stats.KeyExposures {
		t.Fatalf("ScanLinkKeys found %d keys, stats say %d", len(hits), stats.KeyExposures)
	}
}

func TestStreamingRendersMatchInMemory(t *testing.T) {
	data, _ := synthCapture(t, 1500, 3)
	recs, err := ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}

	want := Summarize(recs)
	var got []FrameSummary
	if err := SummarizeStream(bytes.NewReader(data), func(r FrameSummary) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream %d rows, in-memory %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs:\n stream %+v\n memory %+v", i, got[i], want[i])
		}
	}

	wantKeys := ExtractLinkKeys(recs)
	gotKeys, err := ScanLinkKeys(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("stream %d keys, in-memory %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("key %d differs: %+v vs %+v", i, gotKeys[i], wantKeys[i])
		}
	}

	// RenderTable output decomposes into TableHeader + FormatRow lines.
	var streamed bytes.Buffer
	streamed.WriteString(TableHeader())
	for _, r := range got {
		streamed.WriteString(FormatRow(r))
	}
	if streamed.String() != RenderTable(want) {
		t.Fatal("streamed table differs from RenderTable")
	}
}

func TestHCIDumpWriteTo(t *testing.T) {
	d := NewHCIDump()
	d.Observe(0, hci.DirHostToController, hci.EncodeCommand(&hci.Reset{}).Wire())
	d.Observe(0, hci.DirControllerToHost, hci.EncodeEvent(&hci.InquiryComplete{Status: hci.StatusSuccess}).Wire())

	want, err := d.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("WriteTo differs from Bytes")
	}
	var _ io.WriterTo = d
}

// TestScannerShrinksBufferAfterGiantRecord is the regression test for
// payload-buffer retention: one giant record grows the reused buffer,
// and a long run of ordinary records after it must release that
// high-water allocation — not pin it for the rest of the stream — while
// yielding exactly the records ReadAll sees.
func TestScannerShrinksBufferAfterGiantRecord(t *testing.T) {
	const giant = 200 << 10
	recs := []Record{{Flags: FlagCommandEvent, Timestamp: CaptureBase, Data: make([]byte, giant)}}
	for i := 0; i < shrinkAfter+8; i++ {
		recs = append(recs, Record{
			Flags:     FlagCommandEvent,
			Timestamp: CaptureBase,
			Data:      hci.EncodeCommand(&hci.Reset{}).Wire(),
		})
	}
	data := serializeRecords(t, fixLengths(recs))
	want, err := ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}

	sc := NewScanner(bytes.NewReader(data))
	var got []Record
	peak := 0
	for sc.Scan() {
		if cap(sc.buf) > peak {
			peak = cap(sc.buf)
		}
		got = append(got, sc.Record().Clone())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if peak < giant {
		t.Fatalf("buffer peaked at %d bytes, the giant record needed %d", peak, giant)
	}
	if cap(sc.buf) > shrinkCap {
		t.Fatalf("buffer still holds %d bytes after %d small records; want <= %d",
			cap(sc.buf), shrinkAfter+8, shrinkCap)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scanner records diverge from ReadAll after shrink: got %d records, want %d", len(got), len(want))
	}
}
