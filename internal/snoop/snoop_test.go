package snoop

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bt"
	"repro/internal/hci"
)

func sampleRecords() []Record {
	return []Record{
		{
			OriginalLength: 4,
			Flags:          FlagCommandEvent,
			Timestamp:      CaptureBase,
			Data:           hci.EncodeCommand(&hci.Reset{}).Wire(),
		},
		{
			OriginalLength: 26,
			Flags:          FlagCommandEvent,
			Timestamp:      CaptureBase.Add(3 * time.Millisecond),
			Data: hci.EncodeCommand(&hci.LinkKeyRequestReply{
				Addr: bt.MustBDADDR("00:1a:7d:da:71:0a"),
				Key:  bt.MustLinkKey("71bb87cecb00000000000000000000aa"),
			}).Wire(),
		},
		{
			OriginalLength: 10,
			Flags:          FlagCommandEvent | FlagDirectionReceived,
			Timestamp:      CaptureBase.Add(5 * time.Millisecond),
			Data:           hci.EncodeEvent(&hci.LinkKeyRequest{Addr: bt.MustBDADDR("00:1a:7d:da:71:0a")}).Wire(),
		},
	}
}

func fixLengths(recs []Record) []Record {
	for i := range recs {
		recs[i].OriginalLength = uint32(len(recs[i].Data))
	}
	return recs
}

func TestWriterReaderRoundTrip(t *testing.T) {
	recs := fixLengths(sampleRecords())
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadAll(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i].Data, recs[i].Data) {
			t.Errorf("record %d data mismatch", i)
		}
		if got[i].Flags != recs[i].Flags {
			t.Errorf("record %d flags %x != %x", i, got[i].Flags, recs[i].Flags)
		}
		if !got[i].Timestamp.Equal(recs[i].Timestamp) {
			t.Errorf("record %d time %v != %v", i, got[i].Timestamp, recs[i].Timestamp)
		}
	}
}

func TestTimestampRoundTripProperty(t *testing.T) {
	f := func(micros int64) bool {
		// Stay inside a plausible capture era to avoid UnixMicro overflow.
		micros = micros % (1 << 50)
		if micros < 0 {
			micros = -micros
		}
		ts := time.UnixMicro(micros).UTC()
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteRecord(Record{Timestamp: ts, Data: []byte{0x01, 0x03, 0x0c, 0x00}, OriginalLength: 4}); err != nil {
			return false
		}
		got, err := ReadAll(buf.Bytes())
		return err == nil && len(got) == 1 && got[0].Timestamp.Equal(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFileHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 16 {
		t.Fatalf("header length %d, want 16", buf.Len())
	}
	if string(buf.Bytes()[:8]) != "btsnoop\x00" {
		t.Fatalf("magic: %q", buf.Bytes()[:8])
	}
	recs, err := ReadAll(buf.Bytes())
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty file parse: %v %d", err, len(recs))
	}
}

func TestReaderRejectsBadInput(t *testing.T) {
	if _, err := ReadAll([]byte("notasnoopfile...")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Correct magic, wrong version.
	bad := append([]byte("btsnoop\x00"), 0, 0, 0, 9, 0, 0, 3, 0xEA)
	if _, err := ReadAll(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	// Correct version, unknown datalink (9999 — not one of the four
	// btsnoop-defined types).
	bad2 := append([]byte("btsnoop\x00"), 0, 0, 0, 1, 0, 0, 0x27, 0x0F)
	if _, err := ReadAll(bad2); !errors.Is(err, ErrBadDatalink) {
		t.Errorf("bad datalink: %v", err)
	}
	// Known non-H4 datalinks parse (Rewrite must round-trip them).
	h1 := append([]byte("btsnoop\x00"), 0, 0, 0, 1, 0, 0, 3, 0xE9)
	if recs, err := ReadAll(h1); err != nil || len(recs) != 0 {
		t.Errorf("H1 datalink header: %v %d", err, len(recs))
	}
	// Truncated record payload.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteRecord(Record{Data: []byte{1, 2, 3, 4}, OriginalLength: 4})
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadAll(trunc); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	if len(trunc) != 0 {
		r := NewReader(bytes.NewReader(nil))
		if _, err := r.ReadRecord(); !errors.Is(err, ErrTruncated) {
			t.Errorf("empty stream: %v", err)
		}
	}
}

func TestReaderStopsAtEOF(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteRecord(Record{Data: []byte{0x01, 0x03, 0x0c, 0x00}, OriginalLength: 4})
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.ReadRecord(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadRecord(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if r.Datalink() != DatalinkH4 {
		t.Fatalf("datalink %d", r.Datalink())
	}
}

func TestHCIDumpTap(t *testing.T) {
	d := NewHCIDump()
	cmd := hci.EncodeCommand(&hci.Reset{})
	evt := hci.EncodeEvent(&hci.InquiryComplete{Status: hci.StatusSuccess})
	acl := hci.EncodeACL(hci.DirHostToController, 3, []byte{1, 2, 3, 4, 5, 6})
	d.Observe(time.Second, hci.DirHostToController, cmd.Wire())
	d.Observe(2*time.Second, hci.DirControllerToHost, evt.Wire())
	d.Observe(3*time.Second, hci.DirHostToController, acl.Wire())
	if d.Len() != 3 {
		t.Fatalf("len=%d", d.Len())
	}
	recs := d.Records()
	if recs[0].Flags != FlagCommandEvent {
		t.Errorf("command flags %x", recs[0].Flags)
	}
	if recs[1].Flags != FlagCommandEvent|FlagDirectionReceived {
		t.Errorf("event flags %x", recs[1].Flags)
	}
	if recs[2].Flags != 0 {
		t.Errorf("outbound ACL flags %x", recs[2].Flags)
	}
	if !recs[0].Timestamp.Equal(CaptureBase.Add(time.Second)) {
		t.Errorf("timestamp %v", recs[0].Timestamp)
	}

	// Disabled dumps record nothing.
	d.SetEnabled(false)
	d.Observe(4*time.Second, hci.DirHostToController, cmd.Wire())
	if d.Len() != 3 {
		t.Error("disabled dump recorded")
	}
	d.SetEnabled(true)
	if !d.Enabled() {
		t.Error("enable toggle broken")
	}

	// Serialized bytes parse back.
	data, err := d.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(data)
	if err != nil || len(back) != 3 {
		t.Fatalf("parse back: %v %d", err, len(back))
	}

	d.Reset()
	if d.Len() != 0 {
		t.Error("reset did not clear")
	}
}

func TestLinkKeyFilterTruncatesOnlyKeyPackets(t *testing.T) {
	key := bt.MustLinkKey("71a70981f30d6af9e20adee8aafe3264")
	addr := bt.MustBDADDR("48:90:51:1e:7f:2c")
	d := NewHCIDump()
	d.Filter = LinkKeyFilter

	reply := hci.EncodeCommand(&hci.LinkKeyRequestReply{Addr: addr, Key: key}).Wire()
	notif := hci.EncodeEvent(&hci.LinkKeyNotification{Addr: addr, Key: key, KeyType: bt.KeyTypeUnauthenticatedP256}).Wire()
	other := hci.EncodeCommand(&hci.AuthenticationRequested{Handle: 3}).Wire()

	d.Observe(0, hci.DirHostToController, reply)
	d.Observe(0, hci.DirControllerToHost, notif)
	d.Observe(0, hci.DirHostToController, other)

	recs := d.Records()
	if len(recs[0].Data) != 4 {
		t.Errorf("filtered reply kept %d bytes", len(recs[0].Data))
	}
	if !recs[0].Truncated() {
		t.Error("reply record should report truncation")
	}
	if len(recs[1].Data) != 3 {
		t.Errorf("filtered notification kept %d bytes", len(recs[1].Data))
	}
	if recs[2].Truncated() {
		t.Error("unrelated packet must pass unfiltered")
	}
	if hits := ExtractLinkKeys(recs); len(hits) != 0 {
		t.Fatalf("filter leaked %d keys", len(hits))
	}
}

func TestExtractLinkKeysFindsBothCarriers(t *testing.T) {
	key := bt.MustLinkKey("c4f16e949f04ee9c0fd6b1330289c324")
	addr := bt.MustBDADDR("00:1a:7d:da:71:0a")
	d := NewHCIDump()
	d.Observe(0, hci.DirHostToController, hci.EncodeCommand(&hci.LinkKeyRequestReply{Addr: addr, Key: key}).Wire())
	d.Observe(0, hci.DirControllerToHost, hci.EncodeEvent(&hci.LinkKeyNotification{Addr: addr, Key: key}).Wire())
	hits := ExtractLinkKeys(d.Records())
	if len(hits) != 2 {
		t.Fatalf("want 2 hits, got %d", len(hits))
	}
	for _, h := range hits {
		if h.Key != key || h.Peer != addr {
			t.Errorf("bad hit: %+v", h)
		}
	}
	if hits[0].Source == hits[1].Source {
		t.Error("hits should name distinct carriers")
	}
	if got := KeysFor(hits, addr); len(got) != 2 {
		t.Errorf("KeysFor: %d", len(got))
	}
	if got := KeysFor(hits, bt.MustBDADDR("11:11:11:11:11:11")); len(got) != 0 {
		t.Errorf("KeysFor wrong addr: %d", len(got))
	}
}

func TestSummarizeRendersFrames(t *testing.T) {
	d := NewHCIDump()
	d.Observe(0, hci.DirHostToController, hci.EncodeCommand(&hci.CreateConnection{Addr: bt.MustBDADDR("00:1a:7d:da:71:0a")}).Wire())
	d.Observe(0, hci.DirControllerToHost, hci.EncodeEvent(&hci.CommandStatus{Status: hci.StatusSuccess, CommandOpcode: hci.OpCreateConnection}).Wire())
	d.Observe(0, hci.DirControllerToHost, hci.EncodeEvent(&hci.ConnectionComplete{Status: hci.StatusSuccess, Handle: 6, Addr: bt.MustBDADDR("00:1a:7d:da:71:0a"), LinkType: hci.LinkTypeACL}).Wire())
	d.Observe(0, hci.DirHostToController, hci.EncodeACL(hci.DirHostToController, 6, []byte{1, 2, 3, 4, 5, 6}).Wire())

	rows := Summarize(d.Records())
	if len(rows) != 3 { // the ACL frame is skipped
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	if rows[0].Command != "HCI_Create_Connection" || rows[0].Type != "Command" {
		t.Errorf("row 0: %+v", rows[0])
	}
	if rows[1].Event != "HCI_Command_Status" || rows[1].Status != "Success" {
		t.Errorf("row 1: %+v", rows[1])
	}
	if rows[2].Handle != "0x0006" {
		t.Errorf("row 2 handle: %+v", rows[2])
	}
	// Frame numbers are positions in the raw capture (1-based), so the
	// skipped ACL frame leaves a gap.
	if rows[2].Frame != 3 {
		t.Errorf("frame numbering: %+v", rows[2])
	}
	table := RenderTable(rows)
	if !bytes.Contains([]byte(table), []byte("HCI_Create_Connection")) {
		t.Errorf("render:\n%s", table)
	}
	names := CommandEventNames(rows)
	if len(names) != 3 || names[0] != "HCI_Create_Connection" {
		t.Errorf("names: %v", names)
	}
}

func TestRandomizeLinkKeyFilterProducesDecoy(t *testing.T) {
	key := bt.MustLinkKey("71a70981f30d6af9e20adee8aafe3264")
	addr := bt.MustBDADDR("48:90:51:1e:7f:2c")
	d := NewHCIDump()
	d.Filter = RandomizeLinkKeyFilter

	d.Observe(0, hci.DirHostToController, hci.EncodeCommand(&hci.LinkKeyRequestReply{Addr: addr, Key: key}).Wire())
	d.Observe(0, hci.DirControllerToHost, hci.EncodeEvent(&hci.LinkKeyNotification{Addr: addr, Key: key}).Wire())
	d.Observe(0, hci.DirHostToController, hci.EncodeCommand(&hci.AuthenticationRequested{Handle: 3}).Wire())

	hits := ExtractLinkKeys(d.Records())
	if len(hits) != 2 {
		t.Fatalf("the decoy filter must keep key-shaped fields: %d hits", len(hits))
	}
	for _, h := range hits {
		if h.Key == key {
			t.Fatal("the real key leaked through the scrambler")
		}
		if h.Peer != addr {
			t.Fatal("the address must survive (only the key is scrambled)")
		}
	}
	// The packets remain structurally valid (lengths intact).
	for _, rec := range d.Records() {
		if rec.Truncated() {
			t.Fatal("the scrambler must not truncate")
		}
	}
	// Deterministic: the same input scrambles identically.
	d2 := NewHCIDump()
	d2.Filter = RandomizeLinkKeyFilter
	d2.Observe(0, hci.DirHostToController, hci.EncodeCommand(&hci.LinkKeyRequestReply{Addr: addr, Key: key}).Wire())
	if ExtractLinkKeys(d2.Records())[0].Key != hits[0].Key {
		t.Fatal("scrambling must be deterministic")
	}
}
