package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/bt"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/snoop"
	"repro/internal/usbsniff"
)

// FiguresResult bundles every figure reproduction of one evaluation run.
type FiguresResult struct {
	Fig2  Fig2Result
	Fig3  Fig3Result
	Fig7  Fig7Result
	Fig11 Fig11Result
	Fig12 Fig12Result
}

// RunAllFigures regenerates the five figure reproductions as one
// campaign: each figure builds its own worlds from the shared seed, so
// they are independent trials and their results match the sequential
// RunFigN calls exactly. workers <= 0 selects GOMAXPROCS.
func RunAllFigures(seed int64, workers int) (FiguresResult, error) {
	var out FiguresResult
	_, err := campaign.Run(context.Background(), 5, sweepCfg(workers),
		func(_ context.Context, i int) (struct{}, error) {
			var err error
			switch i {
			case 0:
				out.Fig2, err = RunFig2(seed)
			case 1:
				out.Fig3, err = RunFig3(seed)
			case 2:
				out.Fig7 = RunFig7()
			case 3:
				out.Fig11, err = RunFig11(seed)
			case 4:
				out.Fig12, err = RunFig12(seed)
			}
			return struct{}{}, err
		})
	return out, err
}

// Fig2Result carries the message sequences of Fig. 2: the HCI-visible
// flows for a first pairing (SSP) and for a bonded reconnection (LMP
// authentication only).
type Fig2Result struct {
	FreshPairing []string
	BondedReauth []string
}

// RunFig2 reproduces Fig. 2 by pairing two devices, reconnecting them,
// and summarizing the victim's HCI trace for each phase.
func RunFig2(seed int64) (Fig2Result, error) {
	var out Fig2Result
	tb, err := core.NewTestbed(seed, core.TestbedOptions{})
	if err != nil {
		return out, err
	}
	tb.MUser.ExpectPairing(tb.C.Addr())
	tb.M.Host.Pair(tb.C.Addr(), func(error) {})
	tb.Sched.RunFor(30 * time.Second)
	out.FreshPairing = snoop.CommandEventNames(snoop.Summarize(tb.M.Snoop.Records()))

	tb.M.Host.Disconnect(tb.C.Addr())
	tb.Sched.RunFor(time.Second)
	tb.M.Snoop.Reset()

	tb.M.Host.Pair(tb.C.Addr(), func(error) {})
	tb.Sched.RunFor(30 * time.Second)
	out.BondedReauth = snoop.CommandEventNames(snoop.Summarize(tb.M.Snoop.Records()))
	return out, nil
}

// Fig3Result is the paper's Fig. 3: a bonded link key sitting in an HCI
// dump, with the hcidump rendering and the raw packet bytes.
type Fig3Result struct {
	Key         bt.LinkKey
	Hit         snoop.LinkKeyHit
	PacketHex   string // raw H4 bytes of the carrying packet
	DumpRender  string // hcidump-style trace table
	MatchesBond bool
}

// RunFig3 bonds a phone with an accessory, reconnects, and locates the
// link key inside the phone's snoop log.
func RunFig3(seed int64) (Fig3Result, error) {
	var out Fig3Result
	tb, err := core.NewTestbed(seed, core.TestbedOptions{Bond: true})
	if err != nil {
		return out, err
	}
	// Reconnect so HCI_Link_Key_Request / _Reply appear in the fresh log.
	tb.M.Host.Pair(tb.C.Addr(), func(error) {})
	tb.Sched.RunFor(30 * time.Second)

	records := tb.M.Snoop.Records()
	hits := snoop.ExtractLinkKeys(records)
	for _, h := range hits {
		if h.Peer == tb.C.Addr() {
			out.Hit = h
			out.Key = h.Key
		}
	}
	if out.Key.IsZero() {
		return out, fmt.Errorf("eval: no link key in the reconnect dump")
	}
	out.MatchesBond = out.Key == tb.BondKey
	if out.Hit.Frame >= 1 && out.Hit.Frame <= len(records) {
		out.PacketHex = usbsniff.BinaryToHex(records[out.Hit.Frame-1].Data)
	}
	out.DumpRender = snoop.RenderTable(snoop.Summarize(records))
	return out, nil
}

// Fig7Result renders the IO-capability mapping tables for a pre-5.0 and a
// post-5.0 stack.
type Fig7Result struct {
	V42 string
	V50 string
}

// RunFig7 regenerates the paper's Fig. 7 from the mapping implementation.
func RunFig7() Fig7Result {
	caps := []bt.IOCapability{bt.DisplayYesNo, bt.NoInputNoOutput}
	render := func(v bt.Version) string {
		var b strings.Builder
		fmt.Fprintf(&b, "IO capability mapping, version %s (initiator = device A)\n", v)
		for _, resp := range caps {
			for _, init := range caps {
				m := bt.Stage1MappingFor(init, resp, v)
				desc := m.Model.String()
				var notes []string
				if m.ConfirmInitiator {
					notes = append(notes, "A confirms value")
				}
				if m.ConfirmResponder {
					notes = append(notes, "B confirms value")
				}
				if m.PairPopupInitiator {
					notes = append(notes, "A asked yes/no to pair (no value)")
				}
				if m.PairPopupResponder {
					notes = append(notes, "B asked yes/no to pair (no value)")
				}
				if len(notes) == 0 {
					notes = append(notes, "automatic confirmation")
				}
				fmt.Fprintf(&b, "  A=%-16s B=%-16s -> %-18s (%s)\n", init, resp, desc, strings.Join(notes, ", "))
			}
		}
		return b.String()
	}
	return Fig7Result{V42: render(bt.V4_2), V50: render(bt.V5_0)}
}

// Fig11Result compares the link key recovered from C's sniffed USB
// transport with the one in M's HCI dump (they must be the same key).
type Fig11Result struct {
	USBKey    bt.LinkKey
	SnoopKey  bt.LinkKey
	Match     bool
	USBOffset int
}

// RunFig11 reproduces the paper's Fig. 11 validation.
func RunFig11(seed int64) (Fig11Result, error) {
	var out Fig11Result
	tb, err := core.NewTestbed(seed, core.TestbedOptions{
		ClientPlatform:   device.Windows10MSDriver,
		ClientUSBSniffer: true,
		Bond:             true,
	})
	if err != nil {
		return out, err
	}
	// Reconnect so both captures record the key flow.
	tb.MUser.ExpectPairing(tb.C.Addr())
	tb.M.Host.Pair(tb.C.Addr(), func(error) {})
	tb.Sched.RunFor(30 * time.Second)

	keys := usbsniff.ExtractLinkKeys(tb.C.USB.Raw())
	for _, k := range keys {
		if k.Peer == tb.M.Addr() {
			out.USBKey = k.Key
			out.USBOffset = k.HexOffset
		}
	}
	for _, h := range snoop.ExtractLinkKeys(tb.M.Snoop.Records()) {
		if h.Peer == tb.C.Addr() {
			out.SnoopKey = h.Key
		}
	}
	if out.USBKey.IsZero() || out.SnoopKey.IsZero() {
		return out, fmt.Errorf("eval: missing key (usb=%v snoop=%v)", out.USBKey, out.SnoopKey)
	}
	out.Match = out.USBKey == out.SnoopKey
	return out, nil
}

// Fig12Result carries the two rendered HCI traces of Fig. 12.
type Fig12Result struct {
	NormalPairing string
	PageBlocked   string
	// Signature confirms the discriminator: the page-blocked victim sees
	// HCI_Connection_Request yet issues HCI_Authentication_Requested.
	Signature bool
}

// RunFig12 regenerates the paper's Fig. 12 trace comparison.
func RunFig12(seed int64) (Fig12Result, error) {
	var out Fig12Result

	normal, err := core.NewTestbed(seed, core.TestbedOptions{})
	if err != nil {
		return out, err
	}
	normal.MUser.ExpectPairing(normal.C.Addr())
	normal.M.Host.Pair(normal.C.Addr(), func(error) {})
	normal.Sched.RunFor(30 * time.Second)
	out.NormalPairing = snoop.RenderTable(snoop.Summarize(normal.M.Snoop.Records()))

	blocked, err := core.NewTestbed(seed+1, core.TestbedOptions{})
	if err != nil {
		return out, err
	}
	rep := core.RunPageBlocking(blocked.Sched, core.PageBlockingConfig{
		Attacker: blocked.A, Client: blocked.C, Victim: blocked.M, VictimUser: blocked.MUser,
		UsePLOC: true,
	})
	out.PageBlocked = snoop.RenderTable(snoop.Summarize(blocked.M.Snoop.Records()))
	out.Signature = rep.VictimWasConnectionResponder && rep.VictimWasPairingInitiator
	return out, nil
}
