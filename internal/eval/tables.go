// Package eval reproduces the paper's evaluation artifacts: Table I
// (systems vulnerable to link key extraction), Table II (MITM connection
// success rates with and without page blocking), the HCI-trace figures
// (Fig. 3, 11, 12), the IO-capability mapping figure (Fig. 7), and the
// ablation studies called out in DESIGN.md.
package eval

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

// TableIRow is one system of the paper's Table I.
type TableIRow struct {
	OS        string
	HostStack string
	Device    string
	// SUPrivilege mirrors the rightmost column: does extraction need
	// superuser privilege on this platform?
	SUPrivilege bool

	// SnoopTried/SnoopOK and USBTried/USBOK describe the channels run.
	SnoopTried, SnoopOK bool
	USBTried, USBOK     bool
	// KeyVerified reports the extracted key passed the impersonation
	// validation (PAN connect without re-pairing).
	KeyVerified bool
	// Vulnerable is the table's overall verdict for the system.
	Vulnerable bool
}

// RunTableI reproduces Table I: for each of the nine catalog systems in
// the client role C, bond it with M, run the link key extraction through
// every channel the paper demonstrated, and validate the recovered key by
// impersonating C against M.
func RunTableI(seed int64) ([]TableIRow, error) {
	var rows []TableIRow
	for i, entry := range device.TableIPlatforms() {
		p := entry.Platform
		row := TableIRow{
			OS:          p.OS,
			HostStack:   p.StackName,
			Device:      p.Model,
			SUPrivilege: p.SnoopRequiresSU,
		}
		tb, err := core.NewTestbed(seed+int64(i)*1000, core.TestbedOptions{
			ClientPlatform:   p,
			ClientUSBSniffer: entry.ViaUSB,
			Bond:             true,
		})
		if err != nil {
			return rows, fmt.Errorf("eval: testbed for %s/%s: %w", p.OS, p.StackName, err)
		}

		var key core.LinkKeyExtractionReport
		if entry.ViaSnoop {
			row.SnoopTried = true
			rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
				Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(),
				Channel: core.ChannelHCISnoop,
			})
			if err == nil {
				row.SnoopOK = true
				key = rep
			}
		}
		if entry.ViaUSB {
			row.USBTried = true
			rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
				Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(),
				Channel: core.ChannelUSBSniff,
			})
			if err == nil {
				row.USBOK = true
				if !row.SnoopOK {
					key = rep
				}
			}
		}
		row.Vulnerable = row.SnoopOK || row.USBOK
		if row.Vulnerable {
			imp := core.RunImpersonation(tb.Sched, core.ImpersonationConfig{
				Attacker: tb.A, Victim: tb.M, ClientAddr: core.AddrC, Key: key.Key,
			})
			row.KeyVerified = imp.Success
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TableIIRow is one victim device of the paper's Table II.
type TableIIRow struct {
	Device string
	Trials int

	BaselineSuccess int
	BlockingSuccess int

	// Paper columns for side-by-side comparison.
	PaperBaselinePct int
	PaperBlockingPct int
}

// BaselinePct returns the measured baseline success rate in percent.
func (r TableIIRow) BaselinePct() float64 {
	return 100 * float64(r.BaselineSuccess) / float64(r.Trials)
}

// BlockingPct returns the measured page-blocking success rate in percent.
func (r TableIIRow) BlockingPct() float64 {
	return 100 * float64(r.BlockingSuccess) / float64(r.Trials)
}

// deviceSeed derives a stable per-device seed stream, giving each victim
// its own empirical baseline rate the way the paper's per-device
// measurements scatter around the 50% race.
func deviceSeed(base int64, model string, trial int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", model, trial)
	return base + int64(h.Sum64()%1_000_003)
}

// RunTableII reproduces Table II: for each victim device, run `trials`
// independent MITM connection attempts without page blocking (the page
// race) and with page blocking (PLOC), counting successes.
func RunTableII(seed int64, trials int) ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, entry := range device.TableIIPlatforms() {
		p := entry.Platform
		row := TableIIRow{
			Device:           fmt.Sprintf("%s (%s)", p.Model, p.OS),
			Trials:           trials,
			PaperBaselinePct: entry.PaperBaselinePct,
			PaperBlockingPct: entry.PaperBlockingPct,
		}
		for trial := 0; trial < trials; trial++ {
			tb, err := core.NewTestbed(deviceSeed(seed, p.Model+p.OS, trial), core.TestbedOptions{
				VictimPlatform: p,
			})
			if err != nil {
				return rows, fmt.Errorf("eval: baseline testbed: %w", err)
			}
			rep := core.RunBaselineMITM(tb.Sched, core.BaselineMITMConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
			})
			if rep.MITMEstablished {
				row.BaselineSuccess++
			}
		}
		for trial := 0; trial < trials; trial++ {
			tb, err := core.NewTestbed(deviceSeed(seed+7777, p.Model+p.OS, trial), core.TestbedOptions{
				VictimPlatform: p,
			})
			if err != nil {
				return rows, fmt.Errorf("eval: blocking testbed: %w", err)
			}
			rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				UsePLOC:       true,
				UserPairDelay: time.Duration(2+trial%6) * time.Second,
			})
			if rep.MITMEstablished {
				row.BlockingSuccess++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
