// Package eval reproduces the paper's evaluation artifacts: Table I
// (systems vulnerable to link key extraction), Table II (MITM connection
// success rates with and without page blocking), the HCI-trace figures
// (Fig. 3, 11, 12), the IO-capability mapping figure (Fig. 7), and the
// ablation studies called out in DESIGN.md.
//
// Every sweep in the package runs on the campaign engine
// (internal/campaign): trials are pure functions of their derived seeds,
// dispatched to a worker pool, with results collected in trial order —
// so any worker count, including the serial reference (workers == 1),
// produces bit-identical tables. The Run* entry points use GOMAXPROCS
// workers; the Run*Workers variants expose the worker count for the
// determinism tests and the CLI's -workers flag.
package eval

import (
	"context"
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/device"
)

// TableIRow is one system of the paper's Table I.
type TableIRow struct {
	OS        string
	HostStack string
	Device    string
	// SUPrivilege mirrors the rightmost column: does extraction need
	// superuser privilege on this platform?
	SUPrivilege bool

	// SnoopTried/SnoopOK and USBTried/USBOK describe the channels run.
	SnoopTried, SnoopOK bool
	USBTried, USBOK     bool
	// KeyVerified reports the extracted key passed the impersonation
	// validation (PAN connect without re-pairing).
	KeyVerified bool
	// Vulnerable is the table's overall verdict for the system.
	Vulnerable bool
}

// RunTableI reproduces Table I: for each of the nine catalog systems in
// the client role C, bond it with M, run the link key extraction through
// every channel the paper demonstrated, and validate the recovered key by
// impersonating C against M.
func RunTableI(seed int64) ([]TableIRow, error) {
	return RunTableIWorkers(seed, 0)
}

// RunTableIWorkers is RunTableI with an explicit campaign worker count
// (0 = GOMAXPROCS, 1 = serial reference).
func RunTableIWorkers(seed int64, workers int) ([]TableIRow, error) {
	entries := device.TableIPlatforms()
	return campaign.Run(context.Background(), len(entries), sweepCfg(workers),
		func(_ context.Context, i int) (TableIRow, error) {
			entry := entries[i]
			p := entry.Platform
			row := TableIRow{
				OS:          p.OS,
				HostStack:   p.StackName,
				Device:      p.Model,
				SUPrivilege: p.SnoopRequiresSU,
			}
			tb, err := core.NewTestbed(seed+int64(i)*1000, core.TestbedOptions{
				ClientPlatform:   p,
				ClientUSBSniffer: entry.ViaUSB,
				Bond:             true,
			})
			if err != nil {
				return row, fmt.Errorf("eval: testbed for %s/%s: %w", p.OS, p.StackName, err)
			}

			var key core.LinkKeyExtractionReport
			if entry.ViaSnoop {
				row.SnoopTried = true
				rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
					Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(),
					Channel: core.ChannelHCISnoop,
				})
				if err == nil {
					row.SnoopOK = true
					key = rep
				}
			}
			if entry.ViaUSB {
				row.USBTried = true
				rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
					Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(),
					Channel: core.ChannelUSBSniff,
				})
				if err == nil {
					row.USBOK = true
					if !row.SnoopOK {
						key = rep
					}
				}
			}
			row.Vulnerable = row.SnoopOK || row.USBOK
			if row.Vulnerable {
				imp := core.RunImpersonation(tb.Sched, core.ImpersonationConfig{
					Attacker: tb.A, Victim: tb.M, ClientAddr: core.AddrC, Key: key.Key,
				})
				row.KeyVerified = imp.Success
			}
			return row, nil
		})
}

// TableIIRow is one victim device of the paper's Table II.
type TableIIRow struct {
	Device string
	Trials int

	BaselineSuccess int
	BlockingSuccess int

	// Paper columns for side-by-side comparison.
	PaperBaselinePct int
	PaperBlockingPct int
}

// BaselinePct returns the measured baseline success rate in percent.
func (r TableIIRow) BaselinePct() float64 {
	return 100 * float64(r.BaselineSuccess) / float64(r.Trials)
}

// BlockingPct returns the measured page-blocking success rate in percent.
func (r TableIIRow) BlockingPct() float64 {
	return 100 * float64(r.BlockingSuccess) / float64(r.Trials)
}

// deviceSeed derives a stable per-device seed stream, giving each victim
// its own empirical baseline rate the way the paper's per-device
// measurements scatter around the 50% race. It delegates to
// campaign.DeriveSeed so the CLI and the engine share one derivation (and
// so the historical per-device streams — and thus every published table —
// stay unchanged).
func deviceSeed(base int64, model string, trial int) int64 {
	return campaign.DeriveSeed(base, model, trial)
}

// RunTableII reproduces Table II: for each victim device, run `trials`
// independent MITM connection attempts without page blocking (the page
// race) and with page blocking (PLOC), counting successes.
func RunTableII(seed int64, trials int) ([]TableIIRow, error) {
	return RunTableIIWorkers(seed, trials, 0)
}

// RunTableIIWorkers is RunTableII with an explicit campaign worker count.
// All devices × trials × {baseline, blocking} attempts form one flat
// campaign, so the pool stays saturated across device boundaries; the
// per-trial seeds are the same as the serial sweep's and the success
// counts are order-independent sums, keeping the rows bit-identical for
// any worker count.
func RunTableIIWorkers(seed int64, trials, workers int) ([]TableIIRow, error) {
	entries := device.TableIIPlatforms()
	perDevice := 2 * trials // baseline trials then blocking trials
	n := len(entries) * perDevice

	wins, err := campaign.Run(context.Background(), n, sweepCfg(workers),
		func(_ context.Context, i int) (bool, error) {
			dev, k := i/perDevice, i%perDevice
			p := entries[dev].Platform
			blocking := k >= trials
			trial := k % trials
			if !blocking {
				tb, err := core.NewTestbed(deviceSeed(seed, p.Model+p.OS, trial), core.TestbedOptions{
					VictimPlatform: p,
				})
				if err != nil {
					return false, fmt.Errorf("eval: baseline testbed: %w", err)
				}
				rep := core.RunBaselineMITM(tb.Sched, core.BaselineMITMConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				})
				return rep.MITMEstablished, nil
			}
			tb, err := core.NewTestbed(deviceSeed(seed+7777, p.Model+p.OS, trial), core.TestbedOptions{
				VictimPlatform: p,
			})
			if err != nil {
				return false, fmt.Errorf("eval: blocking testbed: %w", err)
			}
			rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				UsePLOC:       true,
				UserPairDelay: time.Duration(2+trial%6) * time.Second,
			})
			return rep.MITMEstablished, nil
		})
	if err != nil {
		return nil, err
	}

	rows := make([]TableIIRow, 0, len(entries))
	for dev, entry := range entries {
		p := entry.Platform
		row := TableIIRow{
			Device:           fmt.Sprintf("%s (%s)", p.Model, p.OS),
			Trials:           trials,
			PaperBaselinePct: entry.PaperBaselinePct,
			PaperBlockingPct: entry.PaperBlockingPct,
		}
		for k := 0; k < perDevice; k++ {
			if !wins[dev*perDevice+k] {
				continue
			}
			if k < trials {
				row.BaselineSuccess++
			} else {
				row.BlockingSuccess++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
