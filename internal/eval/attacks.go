package eval

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/forensics"
	"repro/internal/snoop"
)

// The cross-attack evaluation matrix: every scenario in the
// related-attack library — the paper's neighbours — measured the same
// way the BLAP attacks are. Each (attack, channel) cell runs an
// independent campaign of hermetic worlds, counts attack successes, and
// replays each successful victim's own HCI dump through the incremental
// detector to measure whether and how early the attack's forensic rule
// fires. Rows are pure functions of (seed, attack, channel, trial), so
// the matrix is bit-identical at any worker count.

// attackPasskey is the fixed printed-label value the passkey scenarios
// use (matching cmd/btsim).
const attackPasskey uint32 = 428571

// AttackRow is one (attack, channel) cell of the matrix.
type AttackRow struct {
	Attack  string
	Channel string
	// PlanSpec is the channel's fault plan in the -faults mini-language.
	PlanSpec string
	Trials   int
	// Succeeded counts trials where the attack reached its goal. For the
	// passkey-guard mitigation row this is the attack's success against
	// the hardened protocol — a healthy build reports 0.
	Succeeded int
	// DetectorKind is the forensic rule expected on the victim's dump;
	// "-" when the attack is wire-indistinguishable from a legitimate
	// exchange and no rule can exist (OOB MITM, and the mitigation row
	// where the attack never completes).
	DetectorKind string
	// Detected counts successful trials whose victim dump raised
	// DetectorKind; MeanDetectFraction is the mean first-finding position
	// (frame/totalFrames) across them.
	Detected           int
	MeanDetectFraction float64
}

// attackSpec is one library entry: how to build its world, run it, and
// which victim capture carries its trace.
type attackSpec struct {
	name         string
	detectorKind string // "" = no rule exists
	options      func(plan faults.Plan) core.TestbedOptions
	// run executes the attack and returns (succeeded, victim device).
	run func(tb *core.Testbed) (bool, *device.Device)
}

func attackSpecs() []attackSpec {
	return []attackSpec{
		{
			name:         "stealtooth",
			detectorKind: forensics.FindingSilentRepairing,
			options: func(plan faults.Plan) core.TestbedOptions {
				// The accessory is the victim; it must carry a snoop channel.
				return core.TestbedOptions{ClientPlatform: device.AndroidAutomotive, Bond: true, Faults: plan}
			},
			run: func(tb *core.Testbed) (bool, *device.Device) {
				rep := core.RunStealtooth(tb.Sched, core.StealtoothConfig{
					Attacker: tb.A, Client: tb.C,
					VictimAddr: tb.M.Addr(), VictimCOD: tb.M.Platform.COD,
					OriginalKey: tb.BondKey,
				})
				return rep.RePaired && rep.KeyChanged, tb.C
			},
		},
		{
			name:         "happy-mitm",
			detectorKind: forensics.FindingSilentKeyChange,
			options: func(plan faults.Plan) core.TestbedOptions {
				return core.TestbedOptions{
					ClientPlatform: device.GalaxyS21Android11, Bond: true,
					VictimSilentBondedRepair: true, Faults: plan,
				}
			},
			run: func(tb *core.Testbed) (bool, *device.Device) {
				rep := core.RunHappyMitM(tb.Sched, core.HappyMitMConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
					OriginalKey: tb.BondKey,
				})
				return rep.KeyReplaced, tb.M
			},
		},
		{
			name:         "blurtooth",
			detectorKind: forensics.FindingKeyTypeDowngrade,
			options: func(plan faults.Plan) core.TestbedOptions {
				return core.TestbedOptions{
					ClientPlatform: device.GalaxyS21Android11,
					VictimCTKD:     true, VictimSilentBondedRepair: true, Faults: plan,
				}
			},
			run: func(tb *core.Testbed) (bool, *device.Device) {
				rep := core.RunBLURtooth(tb.Sched, core.BLURtoothConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				})
				return rep.Downgraded, tb.M
			},
		},
		{
			name:         "oob-mitm",
			detectorKind: "", // wire-identical to a genuine OOB pairing
			options: func(plan faults.Plan) core.TestbedOptions {
				return core.TestbedOptions{Faults: plan}
			},
			run: func(tb *core.Testbed) (bool, *device.Device) {
				rep := core.RunOOBMITM(tb.Sched, core.OOBMITMConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M,
				})
				return rep.MITMEstablished, tb.M
			},
		},
		{
			name:         "passkey-sniff",
			detectorKind: forensics.FindingSilentKeyChange,
			options: func(plan faults.Plan) core.TestbedOptions {
				printed := attackPasskey
				return core.TestbedOptions{ClientFixedPasskey: &printed, Faults: plan}
			},
			run: runPasskeyAttack,
		},
		{
			// The mitigation control: same sniff against the enhanced
			// protocol. The attack never completes, so there is no trace to
			// detect — Succeeded must stay 0.
			name:         "passkey-guard",
			detectorKind: "",
			options: func(plan faults.Plan) core.TestbedOptions {
				printed := attackPasskey
				return core.TestbedOptions{ClientFixedPasskey: &printed, EnhancedPasskey: true, Faults: plan}
			},
			run: runPasskeyAttack,
		},
	}
}

func runPasskeyAttack(tb *core.Testbed) (bool, *device.Device) {
	sniffer := core.NewAirSniffer(tb.Medium)
	printed := attackPasskey
	tb.MUser.TypedPasskey = &printed
	rep := core.RunPasskeySniff(tb.Sched, core.PasskeySniffConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		Sniffer: sniffer, PrintedPasskey: printed,
	})
	return rep.Impersonated, tb.M
}

// attackChannels are the matrix's channel conditions.
func attackChannels() []DegradedSetting {
	return []DegradedSetting{
		{Label: "clean", Plan: faults.Plan{}},
		{Label: "5% loss", Plan: faults.Plan{Drop: 0.05}},
	}
}

// attackSample is one trial's measurement.
type attackSample struct {
	OK       bool
	Detected bool
	Fraction float64
}

// RunAttackMatrixWorkers measures every library attack under every
// channel condition with `trials` hermetic worlds per cell.
func RunAttackMatrixWorkers(seed int64, trials, workers int) ([]AttackRow, error) {
	specs := attackSpecs()
	channels := attackChannels()
	rows := make([]AttackRow, 0, len(specs)*len(channels))
	cfg := sweepCfg(workers)

	for _, spec := range specs {
		for _, ch := range channels {
			spec, ch := spec, ch
			row := AttackRow{
				Attack: spec.name, Channel: ch.Label, PlanSpec: ch.Plan.String(),
				Trials: trials, DetectorKind: spec.detectorKind,
			}
			if row.DetectorKind == "" {
				row.DetectorKind = "-"
			}
			domain := "attacks/" + spec.name + "/" + ch.Label
			samples, err := campaign.Run(context.Background(), trials, cfg,
				func(_ context.Context, i int) (attackSample, error) {
					s := campaign.DeriveSeed(seed, domain, i)
					tb, err := core.NewTestbed(s, spec.options(ch.Plan))
					if err != nil {
						// A world whose setup bond the channel ate is a failed
						// trial, not a matrix error.
						if core.IsChannelFault(err) {
							return attackSample{}, nil
						}
						return attackSample{}, err
					}
					ok, victim := spec.run(tb)
					sample := attackSample{OK: ok}
					if !ok || spec.detectorKind == "" || victim.Snoop == nil {
						return sample, nil
					}
					data, err := victim.Snoop.Bytes()
					if err != nil {
						return attackSample{}, err
					}
					det := forensics.NewDetector()
					sc := snoop.NewScanner(bytes.NewReader(data))
					first := 0
					for sc.Scan() {
						det.Push(sc.Record())
						for _, ev := range det.Drain() {
							if ev.Finding.Kind == spec.detectorKind && first == 0 {
								first = ev.Frame
							}
						}
					}
					if err := sc.Err(); err != nil {
						return attackSample{}, err
					}
					if first > 0 && det.Frames() > 0 {
						sample.Detected = true
						sample.Fraction = float64(first) / float64(det.Frames())
					}
					return sample, nil
				})
			if err != nil {
				return nil, fmt.Errorf("eval: attack matrix (%s, %s): %w", spec.name, ch.Label, err)
			}
			var sumFrac float64
			for _, s := range samples {
				if s.OK {
					row.Succeeded++
				}
				if s.Detected {
					row.Detected++
					sumFrac += s.Fraction
				}
			}
			if row.Detected > 0 {
				row.MeanDetectFraction = sumFrac / float64(row.Detected)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RunAttackMatrix is RunAttackMatrixWorkers with default workers.
func RunAttackMatrix(seed int64, trials int) ([]AttackRow, error) {
	return RunAttackMatrixWorkers(seed, trials, 0)
}

// RenderAttackMatrix formats the matrix as a table.
func RenderAttackMatrix(rows []AttackRow) string {
	var b strings.Builder
	b.WriteString("Cross-attack matrix (related-attack library; detection from the victim's own dump)\n")
	fmt.Fprintf(&b, "  %-14s %-8s %-12s %10s %-22s %10s %9s\n",
		"attack", "channel", "plan", "success", "detector rule", "detected", "detect@")
	for _, r := range rows {
		detectAt := "-"
		if r.Detected > 0 {
			detectAt = fmt.Sprintf("%.0f%%", 100*r.MeanDetectFraction)
		}
		plan := r.PlanSpec
		if plan == "" {
			plan = "-"
		}
		fmt.Fprintf(&b, "  %-14s %-8s %-12s %7d/%-2d %-22s %7d/%-2d %9s\n",
			r.Attack, r.Channel, plan,
			r.Succeeded, r.Trials,
			r.DetectorKind,
			r.Detected, r.Succeeded,
			detectAt)
	}
	return b.String()
}
