package eval

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

// MitigationRow is one attack/defence pairing of the mitigation matrix.
type MitigationRow struct {
	Attack        string
	Mitigation    string
	Unmitigated   bool // attack succeeds without the defence
	Mitigated     bool // attack still succeeds with the defence
	DefenceWorked bool
}

// RunMitigationMatrix evaluates each §VII defence (plus the post-KNOB
// hardening) against its attack, with and without the defence armed.
func RunMitigationMatrix(seed int64) ([]MitigationRow, error) {
	var rows []MitigationRow

	// 1. Link key extraction vs the snoop link-key filter (§VII-A).
	extraction := func(filter bool) (bool, error) {
		tb, err := core.NewTestbed(seed, core.TestbedOptions{
			ClientPlatform: device.GalaxyS21Android11, Bond: true,
		})
		if err != nil {
			return false, err
		}
		if filter {
			tb.C.Snoop.Filter = core.SnoopLinkKeyFilter
		}
		rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
			Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
		})
		return err == nil && rep.Key == tb.BondKey, nil
	}
	plain, err := extraction(false)
	if err != nil {
		return nil, err
	}
	filtered, err := extraction(true)
	if err != nil {
		return nil, err
	}
	rows = append(rows, MitigationRow{
		Attack: "link key extraction (HCI dump)", Mitigation: "snoop link-key filter (§VII-A)",
		Unmitigated: plain, Mitigated: filtered, DefenceWorked: plain && !filtered,
	})

	// 2. Page blocking vs the pairing/connection role check (§VII-B).
	pageBlock := func(enforce bool) (bool, error) {
		tb, err := core.NewTestbed(seed+1, core.TestbedOptions{
			VictimEnforceRoleCheck: enforce,
		})
		if err != nil {
			return false, err
		}
		rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
			Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
			UsePLOC: true,
		})
		return rep.MITMEstablished, nil
	}
	pb, err := pageBlock(false)
	if err != nil {
		return nil, err
	}
	pbDef, err := pageBlock(true)
	if err != nil {
		return nil, err
	}
	rows = append(rows, MitigationRow{
		Attack: "page blocking + SSP downgrade", Mitigation: "pairing/connection role check (§VII-B)",
		Unmitigated: pb, Mitigated: pbDef, DefenceWorked: pb && !pbDef,
	})

	// 3. KNOB-style entropy reduction vs a minimum encryption key size.
	knob := func(minKeySize int) (bool, error) {
		var w *core.KNOBWorld
		var err error
		if minKeySize > 1 {
			w, err = core.NewKNOBWorldHardened(seed+2, 1, minKeySize)
		} else {
			w, err = core.NewKNOBWorld(seed+2, 1)
		}
		if err != nil {
			return false, err
		}
		secret := []byte("matrix secret")
		w.Testbed.M.Host.Pair(w.Testbed.C.Addr(), func(err error) {
			if err != nil {
				return
			}
			conn := w.Testbed.M.Host.Connection(w.Testbed.C.Addr())
			w.Testbed.M.Host.Encrypt(conn, func(err error) {
				if err == nil {
					w.Testbed.M.Host.SendData(conn, secret)
				}
			})
		})
		w.Testbed.Sched.RunFor(10 * time.Second)
		_, _, ok := w.BruteForce(secret[:4])
		return ok, nil
	}
	weak, err := knob(1)
	if err != nil {
		return nil, err
	}
	hardened, err := knob(7)
	if err != nil {
		return nil, err
	}
	rows = append(rows, MitigationRow{
		Attack: "1-byte key brute force (KNOB)", Mitigation: "minimum encryption key size 7",
		Unmitigated: weak, Mitigated: hardened, DefenceWorked: weak && !hardened,
	})

	return rows, nil
}

// RenderMitigationMatrix formats the matrix.
func RenderMitigationMatrix(rows []MitigationRow) string {
	var b strings.Builder
	b.WriteString("Mitigation matrix: attack success without/with the defence\n")
	fmt.Fprintf(&b, "%-34s %-42s %-12s %-10s %s\n", "attack", "mitigation", "unmitigated", "mitigated", "defence works")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %-42s %-12s %-10s %s\n", r.Attack, r.Mitigation, yn(r.Unmitigated), yn(r.Mitigated), yn(r.DefenceWorked))
	}
	return b.String()
}
