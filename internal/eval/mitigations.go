package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/device"
)

// MitigationRow is one attack/defence pairing of the mitigation matrix.
type MitigationRow struct {
	Attack        string
	Mitigation    string
	Unmitigated   bool // attack succeeds without the defence
	Mitigated     bool // attack still succeeds with the defence
	DefenceWorked bool
}

// RunMitigationMatrix evaluates each §VII defence (plus the post-KNOB
// hardening) against its attack, with and without the defence armed.
func RunMitigationMatrix(seed int64) ([]MitigationRow, error) {
	return RunMitigationMatrixWorkers(seed, 0)
}

// RunMitigationMatrixWorkers is RunMitigationMatrix with an explicit
// campaign worker count: the six attack×defence worlds (three pairings,
// armed and unarmed) are independent and run as one campaign.
func RunMitigationMatrixWorkers(seed int64, workers int) ([]MitigationRow, error) {
	// 1. Link key extraction vs the snoop link-key filter (§VII-A).
	extraction := func(filter bool) (bool, error) {
		tb, err := core.NewTestbed(seed, core.TestbedOptions{
			ClientPlatform: device.GalaxyS21Android11, Bond: true,
		})
		if err != nil {
			return false, err
		}
		if filter {
			tb.C.Snoop.Filter = core.SnoopLinkKeyFilter
		}
		rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
			Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
		})
		return err == nil && rep.Key == tb.BondKey, nil
	}
	// 2. Page blocking vs the pairing/connection role check (§VII-B).
	pageBlock := func(enforce bool) (bool, error) {
		tb, err := core.NewTestbed(seed+1, core.TestbedOptions{
			VictimEnforceRoleCheck: enforce,
		})
		if err != nil {
			return false, err
		}
		rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
			Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
			UsePLOC: true,
		})
		return rep.MITMEstablished, nil
	}
	// 3. KNOB-style entropy reduction vs a minimum encryption key size.
	knob := func(minKeySize int) (bool, error) {
		var w *core.KNOBWorld
		var err error
		if minKeySize > 1 {
			w, err = core.NewKNOBWorldHardened(seed+2, 1, minKeySize)
		} else {
			w, err = core.NewKNOBWorld(seed+2, 1)
		}
		if err != nil {
			return false, err
		}
		secret := []byte("matrix secret")
		w.Testbed.M.Host.Pair(w.Testbed.C.Addr(), func(err error) {
			if err != nil {
				return
			}
			conn := w.Testbed.M.Host.Connection(w.Testbed.C.Addr())
			w.Testbed.M.Host.Encrypt(conn, func(err error) {
				if err == nil {
					w.Testbed.M.Host.SendData(conn, secret)
				}
			})
		})
		w.Testbed.Sched.RunFor(10 * time.Second)
		_, _, ok := w.BruteForceParallel(secret[:4], 0)
		return ok, nil
	}
	// Six independent worlds: each attack without and with its defence.
	runs := []func() (bool, error){
		func() (bool, error) { return extraction(false) },
		func() (bool, error) { return extraction(true) },
		func() (bool, error) { return pageBlock(false) },
		func() (bool, error) { return pageBlock(true) },
		func() (bool, error) { return knob(1) },
		func() (bool, error) { return knob(7) },
	}
	outcomes, err := campaign.Run(context.Background(), len(runs), sweepCfg(workers),
		func(_ context.Context, i int) (bool, error) { return runs[i]() })
	if err != nil {
		return nil, err
	}

	row := func(attack, mitigation string, unmitigated, mitigated bool) MitigationRow {
		return MitigationRow{
			Attack: attack, Mitigation: mitigation,
			Unmitigated: unmitigated, Mitigated: mitigated,
			DefenceWorked: unmitigated && !mitigated,
		}
	}
	return []MitigationRow{
		row("link key extraction (HCI dump)", "snoop link-key filter (§VII-A)", outcomes[0], outcomes[1]),
		row("page blocking + SSP downgrade", "pairing/connection role check (§VII-B)", outcomes[2], outcomes[3]),
		row("1-byte key brute force (KNOB)", "minimum encryption key size 7", outcomes[4], outcomes[5]),
	}, nil
}

// RenderMitigationMatrix formats the matrix.
func RenderMitigationMatrix(rows []MitigationRow) string {
	var b strings.Builder
	b.WriteString("Mitigation matrix: attack success without/with the defence\n")
	fmt.Fprintf(&b, "%-34s %-42s %-12s %-10s %s\n", "attack", "mitigation", "unmitigated", "mitigated", "defence works")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %-42s %-12s %-10s %s\n", r.Attack, r.Mitigation, yn(r.Unmitigated), yn(r.Mitigated), yn(r.DefenceWorked))
	}
	return b.String()
}
