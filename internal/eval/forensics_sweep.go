package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/forensics"
)

// ForensicsSweepResult summarizes detector quality over many worlds.
type ForensicsSweepResult struct {
	Trials int

	// PageBlockingDetected counts attacked victims whose dump triggered
	// the page-blocking finding (true positives).
	PageBlockingDetected int
	// ExtractionDetected counts attacked accessories whose dump triggered
	// the stalled-authentication finding.
	ExtractionDetected int
	// CleanFalsePositives counts innocent pairings flagged with either
	// attack signature.
	CleanFalsePositives int
}

// RunForensicsSweep measures the capture analyzer's detection and
// false-positive rates across `trials` independent worlds per scenario.
func RunForensicsSweep(seed int64, trials int) (ForensicsSweepResult, error) {
	return RunForensicsSweepWorkers(seed, trials, 0)
}

// RunForensicsSweepWorkers is RunForensicsSweep with an explicit campaign
// worker count. The trials × 3 scenario worlds (attacked victim, attacked
// accessory, innocent pairing) form one flat campaign; the aggregate
// counters are order-independent sums, so the result is bit-identical for
// any worker count.
func RunForensicsSweepWorkers(seed int64, trials, workers int) (ForensicsSweepResult, error) {
	res := ForensicsSweepResult{Trials: trials}
	flagged, err := campaign.Run(context.Background(), trials*3, campaign.Config{Workers: workers},
		func(_ context.Context, idx int) (bool, error) {
			i, scenario := idx/3, idx%3
			switch scenario {
			case 0: // Attacked victim.
				tb, err := core.NewTestbed(seed+int64(i)*3, core.TestbedOptions{})
				if err != nil {
					return false, err
				}
				rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser, UsePLOC: true,
				})
				return rep.MITMEstablished &&
					forensics.Analyze(tb.M.Snoop.Records()).HasFinding(forensics.FindingPageBlocking), nil
			case 1: // Attacked accessory.
				tb2, err := core.NewTestbed(seed+int64(i)*3+1, core.TestbedOptions{
					ClientPlatform: device.GalaxyS21Android11, Bond: true,
				})
				if err != nil {
					return false, err
				}
				_, extractErr := core.RunLinkKeyExtraction(tb2.Sched, core.LinkKeyExtractionConfig{
					Attacker: tb2.A, Client: tb2.C, Target: tb2.M.Addr(), Channel: core.ChannelHCISnoop,
				})
				return extractErr == nil &&
					forensics.Analyze(tb2.C.Snoop.Records()).HasFinding(forensics.FindingStalledAuthTimeout), nil
			default: // Innocent pairing.
				tb3, err := core.NewTestbed(seed+int64(i)*3+2, core.TestbedOptions{})
				if err != nil {
					return false, err
				}
				tb3.MUser.ExpectPairing(tb3.C.Addr())
				tb3.M.Host.Pair(tb3.C.Addr(), func(error) {})
				tb3.Sched.RunFor(30 * time.Second)
				report := forensics.Analyze(tb3.M.Snoop.Records())
				return report.HasFinding(forensics.FindingPageBlocking) ||
					report.HasFinding(forensics.FindingStalledAuthTimeout), nil
			}
		})
	if err != nil {
		return res, err
	}
	for idx, hit := range flagged {
		if !hit {
			continue
		}
		switch idx % 3 {
		case 0:
			res.PageBlockingDetected++
		case 1:
			res.ExtractionDetected++
		default:
			res.CleanFalsePositives++
		}
	}
	return res, nil
}

// RenderForensicsSweep formats the sweep.
func RenderForensicsSweep(r ForensicsSweepResult) string {
	var b strings.Builder
	b.WriteString("Forensic detector quality (per-scenario trials)\n")
	pct := func(n int) float64 { return 100 * float64(n) / float64(r.Trials) }
	fmt.Fprintf(&b, "  page blocking detected on victim dumps:   %d/%d (%.0f%%)\n",
		r.PageBlockingDetected, r.Trials, pct(r.PageBlockingDetected))
	fmt.Fprintf(&b, "  extraction stall detected on accessories: %d/%d (%.0f%%)\n",
		r.ExtractionDetected, r.Trials, pct(r.ExtractionDetected))
	fmt.Fprintf(&b, "  false positives on clean pairings:        %d/%d (%.0f%%)\n",
		r.CleanFalsePositives, r.Trials, pct(r.CleanFalsePositives))
	return b.String()
}
