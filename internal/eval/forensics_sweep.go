package eval

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/forensics"
)

// ForensicsSweepResult summarizes detector quality over many worlds.
type ForensicsSweepResult struct {
	Trials int

	// PageBlockingDetected counts attacked victims whose dump triggered
	// the page-blocking finding (true positives).
	PageBlockingDetected int
	// ExtractionDetected counts attacked accessories whose dump triggered
	// the stalled-authentication finding.
	ExtractionDetected int
	// CleanFalsePositives counts innocent pairings flagged with either
	// attack signature.
	CleanFalsePositives int
}

// RunForensicsSweep measures the capture analyzer's detection and
// false-positive rates across `trials` independent worlds per scenario.
func RunForensicsSweep(seed int64, trials int) (ForensicsSweepResult, error) {
	res := ForensicsSweepResult{Trials: trials}
	for i := 0; i < trials; i++ {
		// Attacked victim.
		tb, err := core.NewTestbed(seed+int64(i)*3, core.TestbedOptions{})
		if err != nil {
			return res, err
		}
		rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
			Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser, UsePLOC: true,
		})
		if rep.MITMEstablished &&
			forensics.Analyze(tb.M.Snoop.Records()).HasFinding(forensics.FindingPageBlocking) {
			res.PageBlockingDetected++
		}

		// Attacked accessory.
		tb2, err := core.NewTestbed(seed+int64(i)*3+1, core.TestbedOptions{
			ClientPlatform: device.GalaxyS21Android11, Bond: true,
		})
		if err != nil {
			return res, err
		}
		if _, err := core.RunLinkKeyExtraction(tb2.Sched, core.LinkKeyExtractionConfig{
			Attacker: tb2.A, Client: tb2.C, Target: tb2.M.Addr(), Channel: core.ChannelHCISnoop,
		}); err == nil &&
			forensics.Analyze(tb2.C.Snoop.Records()).HasFinding(forensics.FindingStalledAuthTimeout) {
			res.ExtractionDetected++
		}

		// Innocent pairing.
		tb3, err := core.NewTestbed(seed+int64(i)*3+2, core.TestbedOptions{})
		if err != nil {
			return res, err
		}
		tb3.MUser.ExpectPairing(tb3.C.Addr())
		tb3.M.Host.Pair(tb3.C.Addr(), func(error) {})
		tb3.Sched.RunFor(30 * time.Second)
		report := forensics.Analyze(tb3.M.Snoop.Records())
		if report.HasFinding(forensics.FindingPageBlocking) ||
			report.HasFinding(forensics.FindingStalledAuthTimeout) {
			res.CleanFalsePositives++
		}
	}
	return res, nil
}

// RenderForensicsSweep formats the sweep.
func RenderForensicsSweep(r ForensicsSweepResult) string {
	var b strings.Builder
	b.WriteString("Forensic detector quality (per-scenario trials)\n")
	pct := func(n int) float64 { return 100 * float64(n) / float64(r.Trials) }
	fmt.Fprintf(&b, "  page blocking detected on victim dumps:   %d/%d (%.0f%%)\n",
		r.PageBlockingDetected, r.Trials, pct(r.PageBlockingDetected))
	fmt.Fprintf(&b, "  extraction stall detected on accessories: %d/%d (%.0f%%)\n",
		r.ExtractionDetected, r.Trials, pct(r.ExtractionDetected))
	fmt.Fprintf(&b, "  false positives on clean pairings:        %d/%d (%.0f%%)\n",
		r.CleanFalsePositives, r.Trials, pct(r.CleanFalsePositives))
	return b.String()
}
