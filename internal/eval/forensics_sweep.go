package eval

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/forensics"
	"repro/internal/snoop"
)

// analyzeDump runs the forensic analyzer over the serialized btsnoop
// artifact, the same bytes an investigator would pull off the device —
// exercising the real capture-file path rather than the in-memory record
// shortcut. Streaming workers are pinned to 1 because each call already
// runs inside a campaign trial; nesting decode pools inside the campaign
// pool would oversubscribe the host for no gain.
func analyzeDump(d *snoop.HCIDump) (*forensics.Report, error) {
	data, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	return forensics.AnalyzeStreamWorkers(bytes.NewReader(data), 1)
}

// ForensicsSweepResult summarizes detector quality over many worlds.
type ForensicsSweepResult struct {
	Trials int

	// PageBlockingDetected counts attacked victims whose dump triggered
	// the page-blocking finding (true positives).
	PageBlockingDetected int
	// ExtractionDetected counts attacked accessories whose dump triggered
	// the stalled-authentication finding.
	ExtractionDetected int
	// CleanFalsePositives counts innocent pairings flagged with either
	// attack signature.
	CleanFalsePositives int
}

// RunForensicsSweep measures the capture analyzer's detection and
// false-positive rates across `trials` independent worlds per scenario.
func RunForensicsSweep(seed int64, trials int) (ForensicsSweepResult, error) {
	return RunForensicsSweepWorkers(seed, trials, 0)
}

// RunForensicsSweepWorkers is RunForensicsSweep with an explicit campaign
// worker count. The trials × 3 scenario worlds (attacked victim, attacked
// accessory, innocent pairing) form one flat campaign; the aggregate
// counters are order-independent sums, so the result is bit-identical for
// any worker count.
func RunForensicsSweepWorkers(seed int64, trials, workers int) (ForensicsSweepResult, error) {
	res := ForensicsSweepResult{Trials: trials}
	flagged, err := campaign.Run(context.Background(), trials*3, sweepCfg(workers),
		func(_ context.Context, idx int) (bool, error) {
			i, scenario := idx/3, idx%3
			switch scenario {
			case 0: // Attacked victim.
				tb, err := core.NewTestbed(seed+int64(i)*3, core.TestbedOptions{})
				if err != nil {
					return false, err
				}
				rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser, UsePLOC: true,
				})
				report, err := analyzeDump(tb.M.Snoop)
				if err != nil {
					return false, err
				}
				return rep.MITMEstablished && report.HasFinding(forensics.FindingPageBlocking), nil
			case 1: // Attacked accessory.
				tb2, err := core.NewTestbed(seed+int64(i)*3+1, core.TestbedOptions{
					ClientPlatform: device.GalaxyS21Android11, Bond: true,
				})
				if err != nil {
					return false, err
				}
				_, extractErr := core.RunLinkKeyExtraction(tb2.Sched, core.LinkKeyExtractionConfig{
					Attacker: tb2.A, Client: tb2.C, Target: tb2.M.Addr(), Channel: core.ChannelHCISnoop,
				})
				report, err := analyzeDump(tb2.C.Snoop)
				if err != nil {
					return false, err
				}
				return extractErr == nil && report.HasFinding(forensics.FindingStalledAuthTimeout), nil
			default: // Innocent pairing.
				tb3, err := core.NewTestbed(seed+int64(i)*3+2, core.TestbedOptions{})
				if err != nil {
					return false, err
				}
				tb3.MUser.ExpectPairing(tb3.C.Addr())
				tb3.M.Host.Pair(tb3.C.Addr(), func(error) {})
				tb3.Sched.RunFor(30 * time.Second)
				report, err := analyzeDump(tb3.M.Snoop)
				if err != nil {
					return false, err
				}
				return report.HasFinding(forensics.FindingPageBlocking) ||
					report.HasFinding(forensics.FindingStalledAuthTimeout), nil
			}
		})
	if err != nil {
		return res, err
	}
	for idx, hit := range flagged {
		if !hit {
			continue
		}
		switch idx % 3 {
		case 0:
			res.PageBlockingDetected++
		case 1:
			res.ExtractionDetected++
		default:
			res.CleanFalsePositives++
		}
	}
	return res, nil
}

// RenderForensicsSweep formats the sweep.
func RenderForensicsSweep(r ForensicsSweepResult) string {
	var b strings.Builder
	b.WriteString("Forensic detector quality (per-scenario trials)\n")
	pct := func(n int) float64 { return 100 * float64(n) / float64(r.Trials) }
	fmt.Fprintf(&b, "  page blocking detected on victim dumps:   %d/%d (%.0f%%)\n",
		r.PageBlockingDetected, r.Trials, pct(r.PageBlockingDetected))
	fmt.Fprintf(&b, "  extraction stall detected on accessories: %d/%d (%.0f%%)\n",
		r.ExtractionDetected, r.Trials, pct(r.ExtractionDetected))
	fmt.Fprintf(&b, "  false positives on clean pairings:        %d/%d (%.0f%%)\n",
		r.CleanFalsePositives, r.Trials, pct(r.CleanFalsePositives))
	return b.String()
}
