package eval

import (
	"sync/atomic"

	"repro/internal/campaign"
)

// sweepProgress is the package's progress sink: every sweep builds its
// campaign.Config through sweepCfg, so one SetProgress call makes the
// whole evaluation surface (tables, figures, ablations, mitigations,
// degraded sweep) report live trial telemetry. The default is nil — no
// sink, no cost — preserving the historical silent behavior.
//
// A process-wide sink is the right scope here: the CLI runs one sweep
// at a time and wants a single progress line across the dozens of
// campaigns a full evaluation chains together. The sink observes only
// completion counters and wall time, never seeds or scheduling, so
// rows remain bit-identical with or without it (pinned by
// campaign.TestProgressDoesNotPerturbResults).
var sweepProgress atomic.Pointer[campaign.Progress]

// SetProgress installs (or, with nil, removes) the progress sink every
// subsequent sweep in this package reports to. Safe to call
// concurrently with running sweeps; in-flight campaigns keep the sink
// they started with.
func SetProgress(p *campaign.Progress) { sweepProgress.Store(p) }

// sweepCfg is the package-standard campaign configuration: the caller's
// worker count plus the installed progress sink.
func sweepCfg(workers int) campaign.Config {
	return campaign.Config{Workers: workers, Progress: sweepProgress.Load()}
}
