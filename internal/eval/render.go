package eval

import (
	"fmt"
	"strings"
)

// yn renders a boolean the way the paper's tables do.
func yn(b bool) string {
	if b {
		return "Y"
	}
	return "N"
}

// RenderTableI formats Table I in the paper's layout.
func RenderTableI(rows []TableIRow) string {
	var b strings.Builder
	b.WriteString("TABLE I: List of tested devices that are vulnerable to link key extraction attack\n")
	fmt.Fprintf(&b, "%-14s %-28s %-18s %-12s %-10s %-8s %-10s\n",
		"OS", "Host stack", "Device", "SU privilege", "Via dump", "Via USB", "Verified")
	for _, r := range rows {
		dump, usb := "-", "-"
		if r.SnoopTried {
			dump = yn(r.SnoopOK)
		}
		if r.USBTried {
			usb = yn(r.USBOK)
		}
		fmt.Fprintf(&b, "%-14s %-28s %-18s %-12s %-10s %-8s %-10s\n",
			r.OS, r.HostStack, r.Device, yn(r.SUPrivilege), dump, usb, yn(r.KeyVerified))
	}
	return b.String()
}

// RenderTableII formats Table II with the paper's reference numbers
// alongside the measured ones, including 95% Wilson intervals and whether
// the paper's value is statistically compatible with the measurement.
func RenderTableII(rows []TableIIRow) string {
	var b strings.Builder
	b.WriteString("TABLE II: Success rates of MITM connection establishment\n")
	fmt.Fprintf(&b, "%-26s %-26s %-22s\n", "Device",
		"without page blocking", "with page blocking")
	fmt.Fprintf(&b, "%-26s %-8s %-9s %-7s %-8s %-9s %-7s\n", "",
		"measured", "95% CI", "paper", "measured", "95% CI", "paper")
	for _, r := range rows {
		bLo, bHi := WilsonInterval(r.BaselineSuccess, r.Trials)
		kLo, kHi := WilsonInterval(r.BlockingSuccess, r.Trials)
		mark := func(ok bool) string {
			if ok {
				return ""
			}
			return "*"
		}
		fmt.Fprintf(&b, "%-26s %-8s %-9s %-7s %-8s %-9s %-7s\n",
			r.Device,
			fmt.Sprintf("%.0f%%", r.BaselinePct()),
			fmt.Sprintf("[%.0f,%.0f]", bLo, bHi),
			fmt.Sprintf("%d%%%s", r.PaperBaselinePct, mark(CompatibleWithPaper(r.BaselineSuccess, r.Trials, r.PaperBaselinePct))),
			fmt.Sprintf("%.0f%%", r.BlockingPct()),
			fmt.Sprintf("[%.0f,%.0f]", kLo, kHi),
			fmt.Sprintf("%d%%%s", r.PaperBlockingPct, mark(CompatibleWithPaper(r.BlockingSuccess, r.Trials, r.PaperBlockingPct))))
	}
	b.WriteString("(* = paper value outside the measured 95% interval)\n")
	return b.String()
}

// RenderJitterAblation formats the page-race jitter sweep. Trials whose
// world failed to build are called out rather than silently folded into
// the loss column.
func RenderJitterAblation(rows []JitterAblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation: baseline MITM success vs page-response jitter spread\n")
	fmt.Fprintf(&b, "%-24s %-8s %-10s\n", "jitter window", "trials", "attacker wins")
	for _, r := range rows {
		fmt.Fprintf(&b, "[%v, %v)%*s %-8d %.0f%%", r.JitterMin, r.JitterMax,
			max(1, 22-len(fmt.Sprintf("[%v, %v)", r.JitterMin, r.JitterMax))), "",
			r.Trials, r.Pct())
		if r.Failures > 0 {
			fmt.Fprintf(&b, "  (%d trials failed to build)", r.Failures)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderPLOCWindow formats the PLOC window sweep.
func RenderPLOCWindow(rows []PLOCWindowRow) string {
	var b strings.Builder
	b.WriteString("Ablation: page blocking success vs victim pairing delay (supervision timeout 20s, PLOC hold 10s)\n")
	fmt.Fprintf(&b, "%-18s %-12s %-8s\n", "user pair delay", "keep-alive", "success")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18v %-12s %-8s\n", r.UserPairDelay, yn(r.KeepAlive), yn(r.Success))
	}
	return b.String()
}

// RenderStallAblation formats the stall-vs-negative-reply comparison.
func RenderStallAblation(rows []StallAblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation: attacker response to the stolen-identity link key request\n")
	fmt.Fprintf(&b, "%-36s %-12s %-18s %s\n", "strategy", "key logged", "client bond intact", "client disconnect")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %-12s %-18s %s\n", r.Strategy, yn(r.KeyLogged), yn(r.ClientBondIntact), r.DisconnectReason)
	}
	return b.String()
}

// RenderLMPTimeout formats the LMP response timeout sweep.
func RenderLMPTimeout(rows []LMPTimeoutRow) string {
	var b strings.Builder
	b.WriteString("Ablation: extraction outcome vs client LMP response timeout\n")
	fmt.Fprintf(&b, "%-12s %-8s %-12s %s\n", "timeout", "found", "elapsed", "disconnect reason")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12v %-8s %-12v %s\n", r.Timeout, yn(r.Found), r.Elapsed.Round(ms), r.Reason)
	}
	return b.String()
}

const ms = 1_000_000 // time.Millisecond without importing time here
