package eval

import (
	"testing"
	"time"
)

// The campaign engine's contract is that the worker count never changes a
// single output bit. These tests pin the serial reference (workers == 1)
// against parallel runs for the paper tables and one ablation sweep; the
// rows are plain comparable structs, so == is a byte-level comparison.

var determinismWorkers = []int{2, 4, 8}

func TestTableIParallelMatchesSerial(t *testing.T) {
	want, err := RunTableIWorkers(7, 1)
	if err != nil {
		t.Fatalf("serial Table I: %v", err)
	}
	for _, w := range determinismWorkers {
		got, err := RunTableIWorkers(7, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d rows, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d row %d: %+v != serial %+v", w, i, got[i], want[i])
			}
		}
	}
}

func TestTableIIParallelMatchesSerial(t *testing.T) {
	const trials = 3
	want, err := RunTableIIWorkers(11, trials, 1)
	if err != nil {
		t.Fatalf("serial Table II: %v", err)
	}
	for _, w := range determinismWorkers {
		got, err := RunTableIIWorkers(11, trials, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d rows, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d row %d: %+v != serial %+v", w, i, got[i], want[i])
			}
		}
	}
}

func TestPLOCWindowAblationParallelMatchesSerial(t *testing.T) {
	delays := []time.Duration{5 * time.Second, 30 * time.Second}
	want, err := RunPLOCWindowAblationWorkers(13, delays, 1)
	if err != nil {
		t.Fatalf("serial PLOC sweep: %v", err)
	}
	for _, w := range determinismWorkers {
		got, err := RunPLOCWindowAblationWorkers(13, delays, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d rows, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d row %d: %+v != serial %+v", w, i, got[i], want[i])
			}
		}
	}
}

func TestJitterAblationParallelMatchesSerial(t *testing.T) {
	spreads := []time.Duration{0, 30 * time.Millisecond}
	want := RunJitterAblationWorkers(17, 6, spreads, 1)
	for _, w := range determinismWorkers {
		got := RunJitterAblationWorkers(17, 6, spreads, w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d rows, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d row %d: %+v != serial %+v", w, i, got[i], want[i])
			}
		}
	}
}
