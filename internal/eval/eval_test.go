package eval

import (
	"strings"
	"testing"
	"time"

	"repro/internal/hci"
)

func TestTableIAllVulnerable(t *testing.T) {
	rows, err := RunTableI(1)
	if err != nil {
		t.Fatalf("RunTableI: %v", err)
	}
	if len(rows) != 9 {
		t.Fatalf("Table I must have 9 systems, got %d", len(rows))
	}
	su := 0
	for _, r := range rows {
		if !r.Vulnerable {
			t.Errorf("%s / %s should be vulnerable", r.OS, r.HostStack)
		}
		if !r.KeyVerified {
			t.Errorf("%s / %s: extracted key failed validation", r.OS, r.HostStack)
		}
		if r.SUPrivilege {
			su++
		}
	}
	// Only Ubuntu requires superuser privilege in the paper's table.
	if su != 1 {
		t.Errorf("exactly one system should require SU, got %d", su)
	}
	text := RenderTableI(rows)
	if !strings.Contains(text, "CSR harmony") || !strings.Contains(text, "BlueZ") {
		t.Errorf("rendered table missing stacks:\n%s", text)
	}
}

func TestTableIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Table II with meaningful trial counts is exercised by the benchmarks")
	}
	rows, err := RunTableII(1, 25)
	if err != nil {
		t.Fatalf("RunTableII: %v", err)
	}
	if len(rows) != 7 {
		t.Fatalf("Table II must have 7 devices, got %d", len(rows))
	}
	for _, r := range rows {
		if r.BlockingPct() != 100 {
			t.Errorf("%s: page blocking success %.0f%%, want 100%%", r.Device, r.BlockingPct())
		}
		if r.BaselinePct() < 20 || r.BaselinePct() > 80 {
			t.Errorf("%s: baseline success %.0f%% outside the plausible race band", r.Device, r.BaselinePct())
		}
	}
}

func TestFig2Sequences(t *testing.T) {
	res, err := RunFig2(3)
	if err != nil {
		t.Fatalf("RunFig2: %v", err)
	}
	wantFresh := []string{"HCI_Create_Connection", "HCI_Link_Key_Request_Negative_Reply", "HCI_IO_Capability_Request", "HCI_Link_Key_Notification"}
	for _, w := range wantFresh {
		if !containsStr(res.FreshPairing, w) {
			t.Errorf("fresh pairing misses %s: %v", w, res.FreshPairing)
		}
	}
	// Bonded re-authentication must use the stored key: a positive reply,
	// and no SSP messages.
	if !containsStr(res.BondedReauth, "HCI_Link_Key_Request_Reply") {
		t.Errorf("bonded reauth misses positive key reply: %v", res.BondedReauth)
	}
	if containsStr(res.BondedReauth, "HCI_IO_Capability_Request") {
		t.Errorf("bonded reauth must not run SSP: %v", res.BondedReauth)
	}
}

func TestFig3KeyInDump(t *testing.T) {
	res, err := RunFig3(4)
	if err != nil {
		t.Fatalf("RunFig3: %v", err)
	}
	if !res.MatchesBond {
		t.Fatalf("dumped key %s does not match the bond", res.Key)
	}
	if !strings.Contains(res.PacketHex, "0b 04 16") {
		t.Errorf("the carrying packet should contain the Link_Key_Request_Reply header, got %s", res.PacketHex)
	}
	if !strings.Contains(res.DumpRender, "HCI_Link_Key_Request_Reply") {
		t.Errorf("rendered dump misses the reply row:\n%s", res.DumpRender)
	}
}

func TestFig7MappingRendering(t *testing.T) {
	res := RunFig7()
	if !strings.Contains(res.V42, "automatic confirmation") {
		t.Errorf("v4.2 table should show automatic confirmation:\n%s", res.V42)
	}
	if !strings.Contains(res.V50, "asked yes/no to pair") {
		t.Errorf("v5.0 table should show the mandated consent dialog:\n%s", res.V50)
	}
	if !strings.Contains(res.V42, "Numeric Comparison") {
		t.Errorf("v4.2 table should include numeric comparison:\n%s", res.V42)
	}
}

func TestFig11USBAndDumpAgree(t *testing.T) {
	res, err := RunFig11(5)
	if err != nil {
		t.Fatalf("RunFig11: %v", err)
	}
	if !res.Match {
		t.Fatalf("USB key %s != snoop key %s", res.USBKey, res.SnoopKey)
	}
}

func TestFig12Traces(t *testing.T) {
	res, err := RunFig12(6)
	if err != nil {
		t.Fatalf("RunFig12: %v", err)
	}
	if !res.Signature {
		t.Fatal("missing page blocking signature")
	}
	if !strings.Contains(res.NormalPairing, "HCI_Create_Connection") {
		t.Errorf("normal trace:\n%s", res.NormalPairing)
	}
	if !strings.Contains(res.PageBlocked, "HCI_Accept_Connection_Request") {
		t.Errorf("blocked trace:\n%s", res.PageBlocked)
	}
}

func TestStallAblation(t *testing.T) {
	rows, err := RunStallAblation(7)
	if err != nil {
		t.Fatalf("RunStallAblation: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 strategies, got %d", len(rows))
	}
	stall, naive := rows[0], rows[1]
	if !stall.KeyLogged || !stall.ClientBondIntact {
		t.Errorf("stall strategy should log the key and keep the bond: %+v", stall)
	}
	if stall.DisconnectReason != hci.StatusLMPResponseTimeout {
		t.Errorf("stall should end in LMP response timeout, got %s", stall.DisconnectReason)
	}
	if naive.ClientBondIntact {
		t.Errorf("negative reply should corrupt the client's bond: %+v", naive)
	}
}

func TestLMPTimeoutAblation(t *testing.T) {
	rows, err := RunLMPTimeoutAblation(8, []time.Duration{2 * time.Second, 10 * time.Second})
	if err != nil {
		t.Fatalf("RunLMPTimeoutAblation: %v", err)
	}
	for _, r := range rows {
		if !r.Found {
			t.Errorf("timeout %v: extraction failed", r.Timeout)
		}
		if r.Elapsed < r.Timeout {
			t.Errorf("timeout %v: attack finished in %v, before the stall window", r.Timeout, r.Elapsed)
		}
	}
	if rows[0].Elapsed >= rows[1].Elapsed {
		t.Errorf("attack time should track the timeout: %v vs %v", rows[0].Elapsed, rows[1].Elapsed)
	}
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestMitigationMatrix(t *testing.T) {
	rows, err := RunMitigationMatrix(9)
	if err != nil {
		t.Fatalf("RunMitigationMatrix: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.Unmitigated {
			t.Errorf("%s: attack should succeed without %s", r.Attack, r.Mitigation)
		}
		if r.Mitigated {
			t.Errorf("%s: attack should fail with %s", r.Attack, r.Mitigation)
		}
		if !r.DefenceWorked {
			t.Errorf("%s: defence verdict wrong", r.Attack)
		}
	}
	text := RenderMitigationMatrix(rows)
	if !strings.Contains(text, "KNOB") {
		t.Errorf("render:\n%s", text)
	}
}

func TestWilsonInterval(t *testing.T) {
	cases := []struct {
		s, n   int
		inside float64 // value that must lie in the interval
	}{
		{50, 100, 50},
		{100, 100, 100},
		{0, 100, 0},
		{48, 100, 52}, // the paper's iPhone row vs our measurement
	}
	for _, c := range cases {
		lo, hi := WilsonInterval(c.s, c.n)
		if lo > hi || lo < 0 || hi > 100 {
			t.Fatalf("degenerate interval [%f,%f]", lo, hi)
		}
		if c.inside < lo || c.inside > hi {
			t.Errorf("WilsonInterval(%d,%d)=[%.1f,%.1f] should contain %.0f", c.s, c.n, lo, hi, c.inside)
		}
	}
	// 100/100 pins the upper bound at 100 with a lower bound near 96.
	lo, hi := WilsonInterval(100, 100)
	if hi != 100 || lo < 94 || lo > 97 {
		t.Errorf("100/100 interval [%f,%f]", lo, hi)
	}
	// Zero trials: the maximally uninformative interval.
	lo, hi = WilsonInterval(0, 0)
	if lo != 0 || hi != 100 {
		t.Errorf("0/0 interval [%f,%f]", lo, hi)
	}
	if !CompatibleWithPaper(52, 100, 52) {
		t.Error("exact match must be compatible")
	}
	if CompatibleWithPaper(10, 100, 90) {
		t.Error("wildly different values must be incompatible")
	}
}

func TestJitterAblationDegeneratesWithoutSpread(t *testing.T) {
	rows := RunJitterAblation(11, 8, []time.Duration{0, 30 * time.Millisecond})
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	zero, spread := rows[0], rows[1]
	// Zero spread: the race is a deterministic tie-break, so the win rate
	// is pinned at 0 or 100 — never in between.
	if zero.Pct() != 0 && zero.Pct() != 100 {
		t.Errorf("degenerate race should be all-or-nothing, got %.0f%%", zero.Pct())
	}
	if spread.AttackerWins == 0 || spread.AttackerWins == spread.Trials {
		t.Errorf("jittered race should be mixed: %d/%d", spread.AttackerWins, spread.Trials)
	}
	if !strings.Contains(RenderJitterAblation(rows), "jitter") {
		t.Error("render")
	}
}

func TestPLOCWindowAblationShape(t *testing.T) {
	rows, err := RunPLOCWindowAblation(12, []time.Duration{5 * time.Second, 30 * time.Second})
	if err != nil {
		t.Fatalf("RunPLOCWindowAblation: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	// [no-ka 5s, no-ka 30s, ka 5s, ka 30s]
	if !rows[0].Success {
		t.Error("pairing inside the supervision window must succeed deterministically")
	}
	// rows[1] (missed window, no keep-alive) degenerates to the page
	// race: either outcome is legitimate, so only the deterministic rows
	// are asserted.
	if !rows[2].Success || !rows[3].Success {
		t.Error("keep-alive must make the window deterministic at any delay")
	}
	if !strings.Contains(RenderPLOCWindow(rows), "keep-alive") {
		t.Error("render")
	}
}

func TestRenderHelpers(t *testing.T) {
	srows, err := RunStallAblation(13)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderStallAblation(srows), "stall") {
		t.Error("stall render")
	}
	trows, err := RunLMPTimeoutAblation(14, []time.Duration{time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderLMPTimeout(trows), "timeout") {
		t.Error("timeout render")
	}
	t2, err := RunTableII(15, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTableII(t2)
	if !strings.Contains(out, "95% CI") || !strings.Contains(out, "page blocking") {
		t.Errorf("table II render:\n%s", out)
	}
}

func TestForensicsSweepPerfectOnSimulatedWorlds(t *testing.T) {
	res, err := RunForensicsSweep(20, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.PageBlockingDetected != res.Trials {
		t.Errorf("page blocking detection %d/%d", res.PageBlockingDetected, res.Trials)
	}
	if res.ExtractionDetected != res.Trials {
		t.Errorf("extraction detection %d/%d", res.ExtractionDetected, res.Trials)
	}
	if res.CleanFalsePositives != 0 {
		t.Errorf("false positives: %d", res.CleanFalsePositives)
	}
	if !strings.Contains(RenderForensicsSweep(res), "false positives") {
		t.Error("render")
	}
}

func TestEvaluationIsDeterministic(t *testing.T) {
	// The whole evaluation is a pure function of the seed: two runs with
	// the same seed must produce identical tables.
	a, err := RunTableII(33, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTableII(33, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across identical seeds:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	c, err := RunTableII(34, 5)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].BaselineSuccess != c[i].BaselineSuccess {
			same = false
		}
	}
	if same {
		t.Error("different seeds should perturb at least one baseline count")
	}
}
