package eval

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/forensics"
	"repro/internal/snoop"
)

// The degraded-channel sweep: how do the BLAP attacks — and blapd's
// detection of them — behave when the 2.4 GHz medium actually loses,
// corrupts, and clusters frames? Each loss setting runs independent
// campaigns of link key extractions (with the attacker's paging
// retry/backoff and the campaign retry policy active), page-blocking
// MITM attempts (measuring live detection latency on the victim's dump),
// and legitimate M–C pairings (the ARQ resilience control).

// DegradedSetting is one channel condition of the sweep.
type DegradedSetting struct {
	Label string
	Plan  faults.Plan
}

// DefaultDegradedSettings is the published sweep: a clean reference,
// three uniform loss rates, and a Gilbert–Elliott bursty channel.
func DefaultDegradedSettings() []DegradedSetting {
	return []DegradedSetting{
		{Label: "clean", Plan: faults.Plan{}},
		{Label: "2% loss", Plan: faults.Plan{Drop: 0.02}},
		{Label: "5% loss", Plan: faults.Plan{Drop: 0.05}},
		{Label: "10% loss", Plan: faults.Plan{Drop: 0.10}},
		{Label: "bursty", Plan: faults.Plan{Drop: 0.02, Burst: &faults.Burst{PEnter: 0.02, PExit: 0.25, BadLoss: 0.6}}},
	}
}

// DegradedRow is one channel condition's measured outcomes.
type DegradedRow struct {
	Label string
	// PlanSpec is the fault plan in the -faults mini-language.
	PlanSpec string
	Trials   int

	// ExtractionOK counts successful link key extractions; MeanAttempts
	// is the average campaign attempts a trial took (1 = no retries).
	ExtractionOK int
	MeanAttempts float64

	// PageBlockingOK counts page-blocking trials that established MITM.
	PageBlockingOK int
	// Detected counts MITM'd victim dumps where the incremental detector
	// fired; MeanDetectFraction is the mean first-finding position
	// (frame/totalFrames) across them.
	Detected           int
	MeanDetectFraction float64

	// LegitPairOK counts legitimate M-C pairings that succeeded with the
	// channel degraded from the first page onwards.
	LegitPairOK int

	// MeanLossRate is the realized frame-loss fraction averaged over the
	// setting's extraction trials (0 for the clean row).
	MeanLossRate float64
}

// degradedPB is one page-blocking trial's sample.
type degradedPB struct {
	MITM     bool
	Detected bool
	Fraction float64
}

// RunDegradedSweepWorkers measures every DefaultDegradedSettings
// condition with `trials` trials per campaign per condition. Trials are
// pure functions of their derived seeds; rows are order-independent
// aggregates, bit-identical at any worker count. The clean row doubles
// as the determinism control: its plan is the zero plan, so its worlds
// are byte-for-byte the worlds a faultless build runs.
func RunDegradedSweepWorkers(seed int64, trials, workers int) ([]DegradedRow, error) {
	settings := DefaultDegradedSettings()
	rows := make([]DegradedRow, len(settings))
	cfg := sweepCfg(workers)
	pol := campaign.RetryPolicy{MaxAttempts: 3, Retryable: core.IsChannelFault}

	for si, setting := range settings {
		row := DegradedRow{Label: setting.Label, PlanSpec: setting.Plan.String(), Trials: trials}
		domain := "degraded/" + setting.Label

		// Campaign 1: link key extraction with the retry policy active.
		type extSample struct {
			OK       bool
			LossRate float64
		}
		ext, err := campaign.RunRetry(context.Background(), trials, cfg, pol,
			func(_ context.Context, a campaign.Attempt) (extSample, error) {
				s := campaign.DeriveSeed(seed, campaign.AttemptDomain(domain+"/extract", a.Attempt), a.Trial)
				tb, err := core.NewTestbed(s, core.TestbedOptions{
					ClientPlatform: device.GalaxyS21Android11,
					Bond:           true,
					Faults:         setting.Plan,
				})
				if err != nil {
					return extSample{}, err
				}
				rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
					Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
				})
				sample := extSample{}
				if tb.Injector != nil {
					sample.LossRate = tb.Injector.Stats().LossRate()
				}
				if err != nil {
					if core.IsChannelFault(err) {
						return sample, err // retryable: the channel ate the attempt
					}
					return sample, nil // terminal outcome: counted as a failed trial
				}
				sample.OK = rep.Key == tb.BondKey
				return sample, nil
			})
		if err != nil && !core.IsChannelFault(err) {
			return nil, fmt.Errorf("eval: degraded extraction (%s): %w", setting.Label, err)
		}
		var sumAttempts, sumLoss float64
		for _, r := range ext {
			if r.Err == nil && r.Value.OK {
				row.ExtractionOK++
			}
			sumAttempts += float64(r.Attempts)
			sumLoss += r.Value.LossRate
		}
		if trials > 0 {
			row.MeanAttempts = sumAttempts / float64(trials)
			row.MeanLossRate = sumLoss / float64(trials)
		}

		// Campaign 2: page blocking + live detection latency on the
		// victim's own dump.
		pbs, err := campaign.Run(context.Background(), trials, cfg,
			func(_ context.Context, i int) (degradedPB, error) {
				s := campaign.DeriveSeed(seed, domain+"/pageblock", i)
				tb, err := core.NewTestbed(s, core.TestbedOptions{Faults: setting.Plan})
				if err != nil {
					return degradedPB{}, err
				}
				rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser, UsePLOC: true,
				})
				sample := degradedPB{MITM: rep.MITMEstablished}
				if !sample.MITM {
					return sample, nil
				}
				data, err := tb.M.Snoop.Bytes()
				if err != nil {
					return degradedPB{}, err
				}
				det := forensics.NewDetector()
				sc := snoop.NewScanner(bytes.NewReader(data))
				first := 0
				for sc.Scan() {
					det.Push(sc.Record())
					for _, ev := range det.Drain() {
						if ev.Finding.Kind == forensics.FindingPageBlocking && first == 0 {
							first = ev.Frame
						}
					}
				}
				if err := sc.Err(); err != nil {
					return degradedPB{}, err
				}
				if first > 0 && det.Frames() > 0 {
					sample.Detected = true
					sample.Fraction = float64(first) / float64(det.Frames())
				}
				return sample, nil
			})
		if err != nil {
			return nil, fmt.Errorf("eval: degraded page blocking (%s): %w", setting.Label, err)
		}
		var sumFrac float64
		for _, s := range pbs {
			if s.MITM {
				row.PageBlockingOK++
			}
			if s.Detected {
				row.Detected++
				sumFrac += s.Fraction
			}
		}
		if row.Detected > 0 {
			row.MeanDetectFraction = sumFrac / float64(row.Detected)
		}

		// Campaign 3: the legitimate pairing control — the degraded
		// channel is up before M and C ever exchange a frame.
		legit, err := campaign.Run(context.Background(), trials, cfg,
			func(_ context.Context, i int) (bool, error) {
				s := campaign.DeriveSeed(seed, domain+"/legit", i)
				tb, err := core.NewTestbed(s, core.TestbedOptions{
					Bond:              true,
					Faults:            setting.Plan,
					FaultsDuringSetup: true,
				})
				if err != nil {
					return false, nil // pairing lost to the channel: a failed trial, not a sweep error
				}
				_ = tb
				return true, nil
			})
		if err != nil {
			return nil, fmt.Errorf("eval: degraded legit pairing (%s): %w", setting.Label, err)
		}
		for _, ok := range legit {
			if ok {
				row.LegitPairOK++
			}
		}

		rows[si] = row
	}
	return rows, nil
}

// RunDegradedSweep is RunDegradedSweepWorkers with default workers.
func RunDegradedSweep(seed int64, trials int) ([]DegradedRow, error) {
	return RunDegradedSweepWorkers(seed, trials, 0)
}

// RenderDegraded formats the sweep as a table.
func RenderDegraded(rows []DegradedRow) string {
	var b strings.Builder
	b.WriteString("Degraded-channel sweep (per-condition campaigns; retry policy: 3 attempts on channel faults)\n")
	fmt.Fprintf(&b, "  %-10s %-34s %12s %9s %13s %12s %12s %10s\n",
		"channel", "plan", "extraction", "attempts", "page-blocking", "detected", "detect@", "legit-pair")
	for _, r := range rows {
		detectAt := "-"
		if r.Detected > 0 {
			detectAt = fmt.Sprintf("%.0f%%", 100*r.MeanDetectFraction)
		}
		fmt.Fprintf(&b, "  %-10s %-34s %9d/%-2d %9.2f %10d/%-2d %9d/%-2d %12s %7d/%-2d\n",
			r.Label, r.PlanSpec,
			r.ExtractionOK, r.Trials, r.MeanAttempts,
			r.PageBlockingOK, r.Trials,
			r.Detected, r.PageBlockingOK,
			detectAt,
			r.LegitPairOK, r.Trials)
	}
	return b.String()
}
