package eval

import "math"

// WilsonInterval returns the 95% Wilson score confidence interval (in
// percent) for a proportion of successes out of n trials. It behaves well
// at the extremes (0% and 100%), unlike the normal approximation — which
// matters here because page blocking sits exactly at 100/100.
func WilsonInterval(successes, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 100
	}
	const z = 1.959963984540054 // 97.5th percentile of the normal
	p := float64(successes) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo = 100 * (center - margin)
	hi = 100 * (center + margin)
	if lo < 0 {
		lo = 0
	}
	if hi > 100 {
		hi = 100
	}
	return lo, hi
}

// CompatibleWithPaper reports whether the paper's reported percentage lies
// within the measured 95% interval — the statistical statement behind
// "the shape matches".
func CompatibleWithPaper(successes, n, paperPct int) bool {
	lo, hi := WilsonInterval(successes, n)
	return float64(paperPct) >= lo-1e-9 && float64(paperPct) <= hi+1e-9
}
