package eval

import (
	"context"
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/radio"
	"repro/internal/snoop"
)

// Ablation studies for the design choices DESIGN.md calls out. All
// sweeps run on the campaign engine; see the package comment for the
// determinism contract.

// JitterAblationRow gives the baseline MITM success rate for one page
// response jitter spread.
type JitterAblationRow struct {
	JitterMin, JitterMax time.Duration
	Trials               int
	AttackerWins         int
	// Failures counts trials whose testbed could not even be built.
	// They are reported explicitly instead of silently shrinking the
	// denominator: Pct stays over Trials, so a failure counts against
	// the attacker rather than vanishing.
	Failures int
}

// Pct returns the attacker's win rate in percent.
func (r JitterAblationRow) Pct() float64 { return 100 * float64(r.AttackerWins) / float64(r.Trials) }

// jitterOutcome is one trial's verdict: the attacker won, or the trial's
// world could not be constructed.
type jitterOutcome struct {
	win    bool
	failed bool
}

// RunJitterAblation sweeps the page-response jitter spread. With zero
// spread the race collapses to a deterministic tie-break; any positive
// spread restores the ~50% race the paper measured at 42-60%.
func RunJitterAblation(seed int64, trials int, spreads []time.Duration) []JitterAblationRow {
	return RunJitterAblationWorkers(seed, trials, spreads, 0)
}

// RunJitterAblationWorkers is RunJitterAblation with an explicit campaign
// worker count. The spreads × trials grid runs as one flat campaign.
func RunJitterAblationWorkers(seed int64, trials int, spreads []time.Duration, workers int) []JitterAblationRow {
	n := len(spreads) * trials
	// Testbed construction errors are folded into the outcome (counted
	// per row), so the trial function never errors and the campaign
	// always yields the full grid.
	outcomes, _ := campaign.Run(context.Background(), n, sweepCfg(workers),
		func(_ context.Context, i int) (jitterOutcome, error) {
			spread, trial := spreads[i/trials], i%trials
			cfg := radio.DefaultConfig()
			cfg.ResponseJitterMin = 10 * time.Millisecond
			cfg.ResponseJitterMax = cfg.ResponseJitterMin + spread
			tb, err := core.NewTestbed(deviceSeed(seed, spread.String(), trial), core.TestbedOptions{
				MediumConfig: &cfg,
			})
			if err != nil {
				return jitterOutcome{failed: true}, nil
			}
			rep := core.RunBaselineMITM(tb.Sched, core.BaselineMITMConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
			})
			return jitterOutcome{win: rep.MITMEstablished}, nil
		})

	rows := make([]JitterAblationRow, 0, len(spreads))
	for si, spread := range spreads {
		row := JitterAblationRow{
			JitterMin: 10 * time.Millisecond,
			JitterMax: 10*time.Millisecond + spread,
			Trials:    trials,
		}
		for t := 0; t < trials; t++ {
			switch o := outcomes[si*trials+t]; {
			case o.failed:
				row.Failures++
			case o.win:
				row.AttackerWins++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// PLOCWindowRow reports page blocking success for one user pairing delay
// under link supervision.
type PLOCWindowRow struct {
	UserPairDelay time.Duration
	KeepAlive     bool
	Success       bool
}

// RunPLOCWindowAblation sweeps the delay between PLOC establishment and
// the victim's pairing intent, with the victim's controller enforcing a
// 20 s link supervision timeout. Without keep-alive traffic the held link
// dies once the supervision window passes and the attack degenerates to
// the ~50% page race (the attacker is still page-scanning with the
// spoofed address); with dummy-data keep-alive (the paper's SDP-ping
// suggestion) the deterministic window extends indefinitely.
//
// A testbed construction failure is propagated (it used to be swallowed,
// silently dropping rows and shifting the callers' row indices).
func RunPLOCWindowAblation(seed int64, delays []time.Duration) ([]PLOCWindowRow, error) {
	return RunPLOCWindowAblationWorkers(seed, delays, 0)
}

// RunPLOCWindowAblationWorkers is RunPLOCWindowAblation with an explicit
// campaign worker count.
func RunPLOCWindowAblationWorkers(seed int64, delays []time.Duration, workers int) ([]PLOCWindowRow, error) {
	const supervision = 20 * time.Second
	n := 2 * len(delays) // keep-alive off, then on — the serial row order
	return campaign.Run(context.Background(), n, sweepCfg(workers),
		func(_ context.Context, idx int) (PLOCWindowRow, error) {
			keepAlive := idx >= len(delays)
			i := idx % len(delays)
			d := delays[i]
			tb, err := core.NewTestbed(seed+int64(i)*31+boolSeed(keepAlive), core.TestbedOptions{
				VictimSupervisionTimeout: supervision,
			})
			if err != nil {
				return PLOCWindowRow{}, fmt.Errorf("eval: PLOC window testbed (delay %v, keep-alive %v): %w", d, keepAlive, err)
			}
			cfg := core.PageBlockingConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				UsePLOC:       true,
				PLOCHold:      10 * time.Second,
				UserPairDelay: d,
				SettleTime:    d + 90*time.Second,
			}
			if keepAlive {
				cfg.KeepAlive = 5 * time.Second
			}
			rep := core.RunPageBlocking(tb.Sched, cfg)
			return PLOCWindowRow{UserPairDelay: d, KeepAlive: keepAlive, Success: rep.MITMEstablished}, nil
		})
}

func boolSeed(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// StallAblationRow contrasts the two ways the attacker could answer the
// controller's link key request during the extraction attack.
type StallAblationRow struct {
	Strategy string
	// KeyLogged reports that the client's dump captured the bonded key.
	KeyLogged bool
	// ClientBondIntact reports that the client still holds the original
	// key for M afterwards (the stealth property).
	ClientBondIntact bool
	// DisconnectReason is what the client saw.
	DisconnectReason hci.Status
}

// RunStallAblation compares the paper's stall (Fig. 9: never answer the
// link key request, forcing an LMP response timeout) against the naive
// alternative of sending a negative reply. The negative reply avoids an
// authentication failure too — but it triggers a fresh SSP pairing that
// overwrites the client's bonded key for M, destroying the very key the
// attack needs and leaving forensic traces. The two strategy worlds are
// independent and run as a two-trial campaign.
func RunStallAblation(seed int64) ([]StallAblationRow, error) {
	return campaign.Run(context.Background(), 2, sweepCfg(0),
		func(_ context.Context, i int) (StallAblationRow, error) {
			if i == 0 {
				return runStallStrategy(seed)
			}
			return runNegativeReplyStrategy(seed + 1)
		})
}

// runStallStrategy is the attack as published: the client is an Android
// device with the snoop log enabled, and the attacker ignores the link
// key request.
func runStallStrategy(seed int64) (StallAblationRow, error) {
	tb, err := core.NewTestbed(seed, core.TestbedOptions{
		ClientPlatform: device.GalaxyS8Android9,
		Bond:           true,
	})
	if err != nil {
		return StallAblationRow{}, err
	}
	origKey := tb.BondKey
	rep, _ := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
	})
	bond := tb.C.Host.Bonds().Get(tb.M.Addr())
	return StallAblationRow{
		Strategy:         "stall (ignore link key request)",
		KeyLogged:        rep.Found && rep.Key == origKey,
		ClientBondIntact: bond != nil && bond.Key == origKey,
		DisconnectReason: rep.DisconnectReason,
	}, nil
}

// runNegativeReplyStrategy is the naive alternative.
func runNegativeReplyStrategy(seed int64) (StallAblationRow, error) {
	tb2, err := core.NewTestbed(seed, core.TestbedOptions{
		ClientPlatform: device.GalaxyS8Android9,
		Bond:           true,
	})
	if err != nil {
		return StallAblationRow{}, err
	}
	origKey2 := tb2.BondKey
	tb2.A.SpoofIdentity(tb2.M.Addr(), tb2.M.Platform.COD)
	// No IgnoreLinkKeyRequest hook: A's host has no bond for C, so it
	// answers the link key request negatively, and C falls back to a new
	// SSP pairing with the impostor.
	tb2.A.Host.Connect(tb2.C.Addr(), func(*host.Conn, error) {})
	tb2.Sched.RunFor(60 * time.Second)

	var logged bool
	for _, h := range snoop.ExtractLinkKeys(tb2.C.Snoop.Records()) {
		if h.Key == origKey2 {
			logged = true
		}
	}
	bond2 := tb2.C.Host.Bonds().Get(tb2.M.Addr())
	row := StallAblationRow{
		Strategy:         "negative reply (naive)",
		KeyLogged:        logged,
		ClientBondIntact: bond2 != nil && bond2.Key == origKey2,
	}
	for _, d := range tb2.C.Host.Disconnects {
		if d.Addr == tb2.M.Addr() {
			row.DisconnectReason = d.Reason
		}
	}
	return row, nil
}

// LMPTimeoutRow gives extraction timing as a function of the client's LMP
// response timeout.
type LMPTimeoutRow struct {
	Timeout time.Duration
	Found   bool
	Elapsed time.Duration
	Reason  hci.Status
}

// RunLMPTimeoutAblation sweeps the client controller's LMP response
// timeout: the extraction always works, and the attack duration tracks
// the timeout (the stalled challenge is the only long pole).
func RunLMPTimeoutAblation(seed int64, timeouts []time.Duration) ([]LMPTimeoutRow, error) {
	return RunLMPTimeoutAblationWorkers(seed, timeouts, 0)
}

// RunLMPTimeoutAblationWorkers is RunLMPTimeoutAblation with an explicit
// campaign worker count.
func RunLMPTimeoutAblationWorkers(seed int64, timeouts []time.Duration, workers int) ([]LMPTimeoutRow, error) {
	return campaign.Run(context.Background(), len(timeouts), sweepCfg(workers),
		func(_ context.Context, i int) (LMPTimeoutRow, error) {
			to := timeouts[i]
			tb, err := core.NewTestbed(seed+int64(i)*17, core.TestbedOptions{
				ClientPlatform:           device.GalaxyS8Android9,
				Bond:                     true,
				ClientLMPResponseTimeout: to,
			})
			if err != nil {
				return LMPTimeoutRow{}, err
			}
			rep, _ := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
				Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
				SettleTime: to + 10*time.Second,
			})
			return LMPTimeoutRow{Timeout: to, Found: rep.Found, Elapsed: rep.Elapsed, Reason: rep.DisconnectReason}, nil
		})
}
