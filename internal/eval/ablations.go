package eval

import (
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/radio"
	"repro/internal/snoop"
)

// Ablation studies for the design choices DESIGN.md calls out.

// JitterAblationRow gives the baseline MITM success rate for one page
// response jitter spread.
type JitterAblationRow struct {
	JitterMin, JitterMax time.Duration
	Trials               int
	AttackerWins         int
}

// Pct returns the attacker's win rate in percent.
func (r JitterAblationRow) Pct() float64 { return 100 * float64(r.AttackerWins) / float64(r.Trials) }

// RunJitterAblation sweeps the page-response jitter spread. With zero
// spread the race collapses to a deterministic tie-break; any positive
// spread restores the ~50% race the paper measured at 42-60%.
func RunJitterAblation(seed int64, trials int, spreads []time.Duration) []JitterAblationRow {
	var rows []JitterAblationRow
	for _, spread := range spreads {
		cfg := radio.DefaultConfig()
		cfg.ResponseJitterMin = 10 * time.Millisecond
		cfg.ResponseJitterMax = cfg.ResponseJitterMin + spread
		row := JitterAblationRow{JitterMin: cfg.ResponseJitterMin, JitterMax: cfg.ResponseJitterMax, Trials: trials}
		for trial := 0; trial < trials; trial++ {
			tb, err := core.NewTestbed(deviceSeed(seed, spread.String(), trial), core.TestbedOptions{
				MediumConfig: &cfg,
			})
			if err != nil {
				continue
			}
			rep := core.RunBaselineMITM(tb.Sched, core.BaselineMITMConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
			})
			if rep.MITMEstablished {
				row.AttackerWins++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// PLOCWindowRow reports page blocking success for one user pairing delay
// under link supervision.
type PLOCWindowRow struct {
	UserPairDelay time.Duration
	KeepAlive     bool
	Success       bool
}

// RunPLOCWindowAblation sweeps the delay between PLOC establishment and
// the victim's pairing intent, with the victim's controller enforcing a
// 20 s link supervision timeout. Without keep-alive traffic the held link
// dies once the supervision window passes and the attack degenerates to
// the ~50% page race (the attacker is still page-scanning with the
// spoofed address); with dummy-data keep-alive (the paper's SDP-ping
// suggestion) the deterministic window extends indefinitely.
func RunPLOCWindowAblation(seed int64, delays []time.Duration) []PLOCWindowRow {
	var rows []PLOCWindowRow
	const supervision = 20 * time.Second
	for _, keepAlive := range []bool{false, true} {
		for i, d := range delays {
			tb, err := core.NewTestbed(seed+int64(i)*31+boolSeed(keepAlive), core.TestbedOptions{
				VictimSupervisionTimeout: supervision,
			})
			if err != nil {
				continue
			}
			cfg := core.PageBlockingConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				UsePLOC:       true,
				PLOCHold:      10 * time.Second,
				UserPairDelay: d,
				SettleTime:    d + 90*time.Second,
			}
			if keepAlive {
				cfg.KeepAlive = 5 * time.Second
			}
			rep := core.RunPageBlocking(tb.Sched, cfg)
			rows = append(rows, PLOCWindowRow{UserPairDelay: d, KeepAlive: keepAlive, Success: rep.MITMEstablished})
		}
	}
	return rows
}

func boolSeed(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// StallAblationRow contrasts the two ways the attacker could answer the
// controller's link key request during the extraction attack.
type StallAblationRow struct {
	Strategy string
	// KeyLogged reports that the client's dump captured the bonded key.
	KeyLogged bool
	// ClientBondIntact reports that the client still holds the original
	// key for M afterwards (the stealth property).
	ClientBondIntact bool
	// DisconnectReason is what the client saw.
	DisconnectReason hci.Status
}

// RunStallAblation compares the paper's stall (Fig. 9: never answer the
// link key request, forcing an LMP response timeout) against the naive
// alternative of sending a negative reply. The negative reply avoids an
// authentication failure too — but it triggers a fresh SSP pairing that
// overwrites the client's bonded key for M, destroying the very key the
// attack needs and leaving forensic traces.
func RunStallAblation(seed int64) ([]StallAblationRow, error) {
	var rows []StallAblationRow

	// Strategy 1: stall (the attack as published). The client is an
	// Android device with the snoop log enabled.
	tb, err := core.NewTestbed(seed, core.TestbedOptions{
		ClientPlatform: device.GalaxyS8Android9,
		Bond:           true,
	})
	if err != nil {
		return nil, err
	}
	origKey := tb.BondKey
	rep, _ := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
	})
	bond := tb.C.Host.Bonds().Get(tb.M.Addr())
	rows = append(rows, StallAblationRow{
		Strategy:         "stall (ignore link key request)",
		KeyLogged:        rep.Found && rep.Key == origKey,
		ClientBondIntact: bond != nil && bond.Key == origKey,
		DisconnectReason: rep.DisconnectReason,
	})

	// Strategy 2: negative reply.
	tb2, err := core.NewTestbed(seed+1, core.TestbedOptions{
		ClientPlatform: device.GalaxyS8Android9,
		Bond:           true,
	})
	if err != nil {
		return rows, err
	}
	origKey2 := tb2.BondKey
	tb2.A.SpoofIdentity(tb2.M.Addr(), tb2.M.Platform.COD)
	// No IgnoreLinkKeyRequest hook: A's host has no bond for C, so it
	// answers the link key request negatively, and C falls back to a new
	// SSP pairing with the impostor.
	tb2.A.Host.Connect(tb2.C.Addr(), func(*host.Conn, error) {})
	tb2.Sched.RunFor(60 * time.Second)

	var logged bool
	for _, h := range snoop.ExtractLinkKeys(tb2.C.Snoop.Records()) {
		if h.Key == origKey2 {
			logged = true
		}
	}
	bond2 := tb2.C.Host.Bonds().Get(tb2.M.Addr())
	row := StallAblationRow{
		Strategy:         "negative reply (naive)",
		KeyLogged:        logged,
		ClientBondIntact: bond2 != nil && bond2.Key == origKey2,
	}
	for _, d := range tb2.C.Host.Disconnects {
		if d.Addr == tb2.M.Addr() {
			row.DisconnectReason = d.Reason
		}
	}
	rows = append(rows, row)
	return rows, nil
}

// LMPTimeoutRow gives extraction timing as a function of the client's LMP
// response timeout.
type LMPTimeoutRow struct {
	Timeout time.Duration
	Found   bool
	Elapsed time.Duration
	Reason  hci.Status
}

// RunLMPTimeoutAblation sweeps the client controller's LMP response
// timeout: the extraction always works, and the attack duration tracks
// the timeout (the stalled challenge is the only long pole).
func RunLMPTimeoutAblation(seed int64, timeouts []time.Duration) ([]LMPTimeoutRow, error) {
	var rows []LMPTimeoutRow
	for i, to := range timeouts {
		tb, err := core.NewTestbed(seed+int64(i)*17, core.TestbedOptions{
			ClientPlatform:           device.GalaxyS8Android9,
			Bond:                     true,
			ClientLMPResponseTimeout: to,
		})
		if err != nil {
			return rows, err
		}
		rep, _ := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
			Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
			SettleTime: to + 10*time.Second,
		})
		rows = append(rows, LMPTimeoutRow{Timeout: to, Found: rep.Found, Elapsed: rep.Elapsed, Reason: rep.DisconnectReason})
	}
	return rows, nil
}
