package eval

import (
	"reflect"
	"testing"
)

func TestDegradedSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	const trials = 4
	want, err := RunDegradedSweepWorkers(31, trials, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		got, err := RunDegradedSweepWorkers(31, trials, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("degraded sweep differs between 1 and %d workers:\n%+v\nvs\n%+v", w, got, want)
		}
	}
}

func TestDegradedSweepOutcomes(t *testing.T) {
	const trials = 6
	rows, err := RunDegradedSweep(31, trials)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("want >= 4 loss settings, got %d", len(rows))
	}
	byLabel := map[string]DegradedRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}

	// The clean row is the zero plan: everything must behave exactly like
	// the faultless evaluation — full success across the board.
	clean, ok := byLabel["clean"]
	if !ok {
		t.Fatal("sweep lacks the clean reference row")
	}
	if clean.PlanSpec != "none" {
		t.Fatalf("clean row plan spec = %q", clean.PlanSpec)
	}
	if clean.ExtractionOK != trials || clean.PageBlockingOK != trials || clean.LegitPairOK != trials {
		t.Fatalf("clean channel must be all-success: %+v", clean)
	}
	if clean.Detected != clean.PageBlockingOK {
		t.Fatalf("forensics must detect every clean-channel MITM: %+v", clean)
	}
	if clean.MeanAttempts != 1 {
		t.Fatalf("clean channel must never retry: %+v", clean)
	}
	if clean.MeanLossRate != 0 {
		t.Fatalf("clean channel reported loss: %+v", clean)
	}

	// Acceptance criterion: legitimate pairing still succeeds at <= 5%
	// uniform loss thanks to baseband retransmission.
	for _, label := range []string{"2% loss", "5% loss"} {
		r, ok := byLabel[label]
		if !ok {
			t.Fatalf("sweep lacks the %q row", label)
		}
		if r.LegitPairOK != trials {
			t.Fatalf("legitimate pairing must survive %s via ARQ: %+v", label, r)
		}
		if r.MeanLossRate <= 0 {
			t.Fatalf("%s row measured no loss — injector not consulted? %+v", label, r)
		}
	}
}

func TestRenderDegraded(t *testing.T) {
	out := RenderDegraded([]DegradedRow{
		{Label: "clean", PlanSpec: "none", Trials: 5, ExtractionOK: 5, MeanAttempts: 1, PageBlockingOK: 5, Detected: 5, MeanDetectFraction: 0.4, LegitPairOK: 5},
		{Label: "bursty", PlanSpec: "drop=0.02,burst=0.02:0.25:0.6", Trials: 5, ExtractionOK: 4, MeanAttempts: 1.4, PageBlockingOK: 3, LegitPairOK: 4},
	})
	for _, want := range []string{"clean", "bursty", "5/5", "40%", "-"} {
		if !containsLine(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func containsLine(s, sub string) bool {
	return len(s) > 0 && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
