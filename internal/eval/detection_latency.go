package eval

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/forensics"
	"repro/internal/snoop"
)

// DetectionLatencyResult measures how early in a victim's capture the
// incremental detector fires — the quantity that matters for the live
// daemon, where a finding is only actionable while the attack is still
// in progress. Latency is reported as the frame index of the first
// page-blocking finding over the total frames in the dump: a batch
// analyzer is stuck at 1.0 by construction (it reports at EOF), while
// the incremental reducer fires at the frame that completes the
// signature.
type DetectionLatencyResult struct {
	Trials int
	// Detected counts attacked-victim dumps where the page-blocking
	// signature fired at all.
	Detected int
	// MeanFirstFrame is the average frame index (1-based) of the first
	// finding across detected trials.
	MeanFirstFrame float64
	// MeanFrames is the average total frame count of the dumps.
	MeanFrames float64
	// MeanFraction is the average of firstFrame/totalFrames across
	// detected trials — 0.25 means the daemon had the finding with 75%
	// of the capture still to come.
	MeanFraction float64
}

// latencySample is one trial's measurement.
type latencySample struct {
	detected   bool
	firstFrame int
	frames     int
}

// RunDetectionLatencyWorkers runs `trials` attacked-victim worlds and
// measures, for each victim dump, at which frame the incremental
// detector first reports page blocking. The per-trial worlds are
// independent, so the campaign engine fans them out; the aggregate is
// an order-independent mean and identical at any worker count.
func RunDetectionLatencyWorkers(seed int64, trials, workers int) (DetectionLatencyResult, error) {
	res := DetectionLatencyResult{Trials: trials}
	samples, err := campaign.Run(context.Background(), trials, sweepCfg(workers),
		func(_ context.Context, i int) (latencySample, error) {
			tb, err := core.NewTestbed(seed+int64(i), core.TestbedOptions{})
			if err != nil {
				return latencySample{}, err
			}
			rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser, UsePLOC: true,
			})
			if !rep.MITMEstablished {
				return latencySample{}, nil
			}
			data, err := tb.M.Snoop.Bytes()
			if err != nil {
				return latencySample{}, err
			}
			det := forensics.NewDetector()
			sc := snoop.NewScanner(bytes.NewReader(data))
			sample := latencySample{}
			for sc.Scan() {
				det.Push(sc.Record())
				for _, ev := range det.Drain() {
					if ev.Finding.Kind == forensics.FindingPageBlocking && !sample.detected {
						sample.detected = true
						sample.firstFrame = ev.Frame
					}
				}
			}
			if err := sc.Err(); err != nil {
				return latencySample{}, err
			}
			sample.frames = det.Frames()
			return sample, nil
		})
	if err != nil {
		return res, err
	}
	var sumFirst, sumFrames, sumFrac float64
	for _, s := range samples {
		if !s.detected {
			continue
		}
		res.Detected++
		sumFirst += float64(s.firstFrame)
		sumFrames += float64(s.frames)
		sumFrac += float64(s.firstFrame) / float64(s.frames)
	}
	if res.Detected > 0 {
		n := float64(res.Detected)
		res.MeanFirstFrame = sumFirst / n
		res.MeanFrames = sumFrames / n
		res.MeanFraction = sumFrac / n
	}
	return res, nil
}

// RunDetectionLatency is RunDetectionLatencyWorkers with default workers.
func RunDetectionLatency(seed int64, trials int) (DetectionLatencyResult, error) {
	return RunDetectionLatencyWorkers(seed, trials, 0)
}

// RenderDetectionLatency formats the sweep.
func RenderDetectionLatency(r DetectionLatencyResult) string {
	var b strings.Builder
	b.WriteString("Live detection latency (attacked victims, incremental detector)\n")
	fmt.Fprintf(&b, "  page blocking detected:   %d/%d trials\n", r.Detected, r.Trials)
	if r.Detected > 0 {
		fmt.Fprintf(&b, "  first finding at frame:   %.1f of %.1f (mean)\n", r.MeanFirstFrame, r.MeanFrames)
		fmt.Fprintf(&b, "  capture position:         %.0f%% (batch analyzer: 100%% by construction)\n",
			100*r.MeanFraction)
	}
	return b.String()
}
